"""Synthetic load generation against the inference service.

Two traffic shapes:

* **closed loop** (:func:`run_closed_loop`) — submit a burst of requests
  back-to-back and wait for all of them; measures peak sustainable
  throughput at a given offered batch level.
* **open loop** (:func:`run_open_loop`) — submit requests on a Poisson
  arrival process at a target rate regardless of completions; measures
  latency under a fixed offered load, the way real traffic behaves.

:func:`throughput_sweep` drives the closed loop across several offered
batch levels and compares each against the per-request ``engine.run``
baseline — the exact path a client would hit without the serving layer.
Every sweep point also verifies bit-identical outputs between the scheduled
micro-batches and unbatched execution, so the speedup is never bought with
a correctness drift.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_kv
from repro.core.engine import PhoneBitEngine
from repro.serving.pool import ModelPool
from repro.serving.service import InferenceService, ServiceReport

__all__ = [
    "ChaosResult",
    "LoadgenResult",
    "RolloutDrillResult",
    "ShedLoadResult",
    "SpikeLoadResult",
    "SpikePhase",
    "phased_poisson_offsets",
    "poisson_offsets",
    "run_arrival_schedule",
    "run_chaos_scenario",
    "run_closed_loop",
    "run_open_loop",
    "run_open_loop_shedding",
    "run_rollout_drill",
    "run_spike_load",
    "sequential_baseline",
    "sequential_forward_baseline",
    "sweep_table",
    "synthetic_images",
    "throughput_sweep",
    "write_sweep_records",
]


# ---------------------------------------------------------------------------
# arrival schedules — the one schedule-driven core every open-loop load
# shape rides on.  A schedule is a pure function of its rng (never of the
# wall clock), so the same seed always yields a byte-identical arrival
# sequence; the pacing driver then walks the wall clock through it.
# ---------------------------------------------------------------------------

def poisson_offsets(rng: np.random.Generator, offered_rps: float,
                    count: int) -> np.ndarray:
    """Cumulative Poisson arrival offsets (seconds from the run start).

    One vectorized ``exponential`` draw of ``count`` gaps — the exact
    draw the flat open-loop generators have always made, so existing
    seeded schedules stay byte-identical (pinned by
    ``tests/test_scenarios.py``).
    """
    if offered_rps <= 0:
        raise ValueError("offered_rps must be positive")
    return np.cumsum(rng.exponential(1.0 / offered_rps, size=count))


def phased_poisson_offsets(rng: np.random.Generator,
                           phases: Sequence[tuple]) -> tuple:
    """Piecewise-constant-rate Poisson schedule for ``(name, rps, dur)``
    phases: ``(offsets, phase_index)`` arrays.

    Gaps are drawn one at a time — draw-for-draw identical to the
    historical spike loop, including the final draw of each phase that
    lands past the phase end and is discarded — so seeded spike
    schedules are byte-identical to the pre-refactor ones.
    """
    offsets: List[float] = []
    phase_index: List[int] = []
    position = 0.0
    for number, (_, offered_rps, duration_s) in enumerate(phases):
        if offered_rps <= 0:
            raise ValueError("offered_rps must be positive in every phase")
        phase_end = position + float(duration_s)
        while True:
            position += rng.exponential(1.0 / offered_rps)
            if position >= phase_end:
                position = phase_end
                break
            offsets.append(position)
            phase_index.append(number)
    return (np.asarray(offsets, dtype=np.float64),
            np.asarray(phase_index, dtype=np.int64))


def run_arrival_schedule(offsets: Sequence[float], arrive,
                         t0: Optional[float] = None) -> float:
    """Pace the wall clock through a precomputed arrival schedule.

    Sleeps until ``t0 + offsets[i]`` then calls ``arrive(i)`` for each
    arrival, never stalling the clock on slow submissions — the open-loop
    contract.  Returns ``t0`` so callers measure wall time and drain
    budgets from the same origin the schedule used.
    """
    if t0 is None:
        t0 = time.perf_counter()
    for index in range(len(offsets)):
        delay = t0 + float(offsets[index]) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        arrive(index)
    return t0


def sweep_table(records: Sequence[dict], title: Optional[str] = None) -> str:
    """Render :func:`throughput_sweep` records as an aligned table.

    Single rendering path shared by ``repro.cli serve-bench`` and
    ``benchmarks/bench_serving_throughput.py`` so the two cannot drift when
    the record schema changes.
    """
    from repro.analysis.reporting import format_table

    return format_table(
        ["offered batch", "req/s", "seq req/s", "fwd req/s", "speedup",
         "p50 (ms)", "p99 (ms)", "mean batch"],
        [
            [r["offered_batch"], r["requests_per_s"], r["sequential_rps"],
             r["sequential_forward_rps"],
             f"{r['speedup_vs_sequential']:.2f}x",
             r["latency_p50_ms"], r["latency_p99_ms"], r["mean_batch_size"]]
            for r in records
        ],
        title=title,
    )


def write_sweep_records(records: Sequence[dict], path: str) -> str:
    """Write sweep records as ``{"records": ...}`` JSON.

    ``path`` of ``"-"`` returns the payload instead of writing a file; any
    other path is written and a ``wrote <path>`` note is returned.
    """
    import json

    payload = json.dumps({"records": list(records)}, indent=2)
    if path == "-":
        return payload
    with open(path, "w") as fh:
        fh.write(payload + "\n")
    return f"wrote {path}"


def synthetic_images(input_shape: Sequence[int], count: int, seed: int = 0,
                     unique: bool = True) -> np.ndarray:
    """Random uint8 request images of shape ``(count,) + input_shape``.

    With ``unique=False`` a smaller set of distinct images is tiled, which
    gives the response cache something to hit.
    """
    rng = np.random.default_rng(seed)
    if unique:
        return rng.integers(0, 256, size=(count, *input_shape)).astype(np.uint8)
    distinct = max(1, count // 4)
    base = rng.integers(0, 256, size=(distinct, *input_shape)).astype(np.uint8)
    reps = -(-count // distinct)
    return np.tile(base, (reps,) + (1,) * len(input_shape))[:count]


@dataclass(frozen=True)
class LoadgenResult:
    """Outcome of one load-generation run."""

    report: ServiceReport
    wall_s: float
    offered_rps: Optional[float]  #: None for closed-loop runs
    outputs: Optional[np.ndarray] = None

    @property
    def achieved_rps(self) -> float:
        if self.wall_s <= 0:
            return float("inf") if self.report.requests else 0.0
        return self.report.requests / self.wall_s

    def table(self) -> str:
        rows = [
            ("offered load", "closed loop" if self.offered_rps is None
             else f"{self.offered_rps:.1f} req/s"),
            ("achieved (req/s)", self.achieved_rps),
            ("wall time (s)", self.wall_s),
        ]
        return "\n".join([format_kv(rows, title="Load generation"),
                          "", self.report.table()])


def run_closed_loop(
    service: InferenceService, model: str, images: np.ndarray
) -> LoadgenResult:
    """Submit every image back-to-back, then wait for all responses."""
    t0 = time.perf_counter()
    futures = service.submit_batch(model, images)
    outputs = np.stack([future.result() for future in futures])
    wall_s = time.perf_counter() - t0
    return LoadgenResult(
        report=service.report(model),
        wall_s=wall_s,
        offered_rps=None,
        outputs=outputs,
    )


def run_open_loop(
    service: InferenceService,
    model: str,
    images: np.ndarray,
    offered_rps: float,
    seed: int = 0,
) -> LoadgenResult:
    """Submit requests on a Poisson arrival process at ``offered_rps``."""
    rng = np.random.default_rng(seed)
    offsets = poisson_offsets(rng, offered_rps, len(images))
    futures: List = []

    def arrive(index: int) -> None:
        futures.append(service.submit(model, images[index]))

    t0 = run_arrival_schedule(offsets, arrive)
    outputs = np.stack([future.result() for future in futures])
    wall_s = time.perf_counter() - t0
    return LoadgenResult(
        report=service.report(model),
        wall_s=wall_s,
        offered_rps=offered_rps,
        outputs=outputs,
    )


@dataclass(frozen=True)
class ShedLoadResult:
    """Outcome of one non-blocking open-loop run against a cluster.

    ``outputs`` holds the completed rows keyed by offered-request index, so
    correctness checks can compare exactly the subset that was admitted.
    """

    report: Optional[ServiceReport]
    wall_s: float
    offered_rps: float
    completed: int
    shed: int
    retry_after_ms_mean: float
    outputs: dict

    @property
    def offered(self) -> int:
        return self.completed + self.shed

    @property
    def achieved_rps(self) -> float:
        if self.wall_s <= 0:
            return float("inf") if self.completed else 0.0
        return self.completed / self.wall_s

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0


def run_open_loop_shedding(
    cluster,
    model: str,
    images: np.ndarray,
    offered_rps: float,
    seed: int = 0,
    slo: Optional[str] = None,
) -> ShedLoadResult:
    """Open-loop Poisson arrivals with *non-blocking* admission.

    :func:`run_open_loop` backpressures the arrival process when the
    service saturates, which hides overload behaviour.  This variant is
    how real open-loop traffic meets an admission-controlled front end:
    every arrival calls ``submit(..., block=False)``, an overload shed
    (:class:`~repro.serving.cluster.ClusterOverloadError`) is *counted* —
    along with the router's suggested retry-after — and the arrival clock
    never stalls.  Cluster-only: the single-process service has no
    non-blocking admission surface.  ``slo`` tags every arrival with one
    SLO class for the router's tiered admission.
    """
    from repro.serving.cluster import ClusterOverloadError

    rng = np.random.default_rng(seed)
    offsets = poisson_offsets(rng, offered_rps, len(images))
    submit_kwargs = {} if slo is None else {"slo": slo}
    futures = {}
    shed = 0
    retry_after_sum = 0.0

    def arrive(index: int) -> None:
        nonlocal shed, retry_after_sum
        try:
            futures[index] = cluster.submit(model, images[index],
                                            block=False, **submit_kwargs)
        except ClusterOverloadError as exc:
            shed += 1
            retry_after_sum += exc.retry_after_s

    t0 = run_arrival_schedule(offsets, arrive)
    outputs = {index: future.result() for index, future in futures.items()}
    wall_s = time.perf_counter() - t0
    try:
        report = cluster.report(model)
    except KeyError:  # pragma: no cover - everything shed
        report = None
    return ShedLoadResult(
        report=report,
        wall_s=wall_s,
        offered_rps=offered_rps,
        completed=len(outputs),
        shed=shed,
        retry_after_ms_mean=(retry_after_sum / shed * 1000.0) if shed else 0.0,
        outputs=outputs,
    )


@dataclass(frozen=True)
class SpikePhase:
    """Arrival/shed accounting for one phase of a spike run."""

    name: str
    offered_rps: float
    duration_s: float
    offered: int
    shed: int

    @property
    def admitted(self) -> int:
        return self.offered - self.shed

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class SpikeLoadResult:
    """Outcome of one phased (spike-shaped) open-loop run."""

    phases: tuple
    wall_s: float
    completed: int
    #: Completed rows keyed by the *image index* each arrival used, for
    #: bit-exactness checks against a baseline over the same images.
    outputs: dict

    @property
    def offered(self) -> int:
        return sum(p.offered for p in self.phases)

    @property
    def shed(self) -> int:
        return sum(p.shed for p in self.phases)

    def phase(self, name: str) -> SpikePhase:
        """Last phase with ``name`` (spike runs repeat phase names)."""
        for p in reversed(self.phases):
            if p.name == name:
                return p
        raise KeyError(f"no phase named {name!r}")

    def table(self) -> str:
        from repro.analysis.reporting import format_table

        return format_table(
            ["phase", "offered rps", "duration (s)", "offered", "admitted",
             "shed", "shed %"],
            [
                [p.name, p.offered_rps, p.duration_s, p.offered, p.admitted,
                 p.shed, f"{100.0 * p.shed_rate:.1f}"]
                for p in self.phases
            ],
            title="Spike load",
        )


def run_spike_load(
    cluster,
    model: str,
    images: np.ndarray,
    phases: Sequence[tuple],
    seed: int = 0,
) -> SpikeLoadResult:
    """Phased non-blocking open loop: baseline → spike → baseline.

    ``phases`` is a sequence of ``(name, offered_rps, duration_s)``;
    arrivals are Poisson within each phase and admission is non-blocking
    (sheds are counted per phase, the arrival clock never stalls) —
    exactly :func:`run_open_loop_shedding` with a piecewise-constant
    offered rate.  This is the traffic shape the autoscaler is judged on:
    a spike phase that sheds should trigger growth, and the recovery
    phase's shed rate shows whether the grown fleet absorbed the load.

    ``images`` are cycled over arrivals; completed outputs are keyed by
    image index so bit-exactness checks compare exactly the admitted
    subset (arrivals sharing an image produce identical rows).
    """
    from repro.serving.cluster import ClusterOverloadError

    rng = np.random.default_rng(seed)
    offsets, phase_index = phased_poisson_offsets(rng, phases)
    futures: dict = {}
    offered_counts = [0] * len(phases)
    shed_counts = [0] * len(phases)

    def arrive(arrival: int) -> None:
        number = int(phase_index[arrival])
        index = arrival % len(images)
        offered_counts[number] += 1
        try:
            futures[arrival] = (index,
                                cluster.submit(model, images[index],
                                               block=False))
        except ClusterOverloadError:
            shed_counts[number] += 1

    t0 = run_arrival_schedule(offsets, arrive)
    phase_stats = [
        SpikePhase(
            name=name, offered_rps=float(offered_rps),
            duration_s=float(duration_s), offered=offered_counts[number],
            shed=shed_counts[number],
        )
        for number, (name, offered_rps, duration_s) in enumerate(phases)
    ]
    outputs = {}
    for index, future in futures.values():
        outputs[index] = future.result()
    wall_s = time.perf_counter() - t0
    return SpikeLoadResult(
        phases=tuple(phase_stats),
        wall_s=wall_s,
        completed=len(futures),
        outputs=outputs,
    )


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one fault-injected load run (:func:`run_chaos_scenario`).

    Every offered request is accounted for exactly once: it either
    ``completed`` (with an output row bit-identical to the fault-free
    baseline), was ``shed`` at admission, expired its ``deadline``, or
    ``failed`` terminally (fleet died).  A future that resolves to none of
    those within the drain timeout is a *hung future* and the scenario
    raises instead of returning — silent loss is the one outcome a chaos
    run must never report as success.
    """

    wall_s: float
    completed: int
    shed: int
    deadline_expired: int
    failed: int
    retries: int
    hedges: int
    quarantined: int
    respawns: int
    requeued: int
    bit_identical: bool
    p99_ms: float
    #: Faults the plan actually fired, in firing order
    #: (:class:`~repro.serving.faults.FaultEvent` tuples).
    fault_events: tuple
    #: The plan's deterministic schedule, for same-seed replay checks.
    schedule: tuple
    #: Completed rows keyed by offered-request index.
    outputs: dict

    @property
    def offered(self) -> int:
        return self.completed + self.shed + self.deadline_expired + self.failed

    @property
    def goodput_rps(self) -> float:
        if self.wall_s <= 0:
            return float("inf") if self.completed else 0.0
        return self.completed / self.wall_s

    def table(self) -> str:
        rows = [
            ("offered", self.offered),
            ("completed", self.completed),
            ("shed", self.shed),
            ("deadline expired", self.deadline_expired),
            ("failed", self.failed),
            ("goodput (req/s)", self.goodput_rps),
            ("latency p99 (ms)", self.p99_ms),
            ("retries", self.retries),
            ("hedges", self.hedges),
            ("quarantined", self.quarantined),
            ("respawns", self.respawns),
            ("requeued", self.requeued),
            ("faults fired", len(self.fault_events)),
            ("bit identical", self.bit_identical),
            ("wall time (s)", self.wall_s),
        ]
        lines = [format_kv(rows, title="Chaos scenario")]
        if self.fault_events:
            lines.append("")
            lines.append("fault timeline:")
            for event in self.fault_events:
                lines.append(f"  t={event.at_s:6.3f}s  {event.kind:<10s} "
                             f"{event.target}")
        return "\n".join(lines)


def run_chaos_scenario(
    plan,
    model: str = "MicroCNN",
    workers: int = 3,
    requests: int = 96,
    offered_rps: float = 150.0,
    deadline_s: Optional[float] = None,
    seed: int = 0,
    retry=None,
    quarantine=None,
    drain_timeout_s: float = 60.0,
    **cluster_kwargs,
) -> ChaosResult:
    """Drive sustained open-loop load through a fault-injected cluster.

    Builds a :class:`~repro.serving.cluster.ClusterService` with ``plan``
    armed (plus retry/hedging and quarantine policies — defaults are used
    when not given), submits ``requests`` Poisson arrivals at
    ``offered_rps`` with non-blocking admission and an optional end-to-end
    ``deadline_s``, then drains every future and audits the outcome:

    * **no hung futures** — a future still unresolved ``drain_timeout_s``
      after the last arrival raises :class:`RuntimeError`;
    * **no lost or duplicated work** — completed + shed + expired + failed
      must equal offered (checked by construction: every arrival lands in
      exactly one bucket);
    * **bit-identical outputs** — every completed row is compared against
      a fault-free single-process baseline over the same images.

    The same ``plan`` seed reproduces the same fault schedule, so a chaos
    failure is a unit test away from being replayed.  ``plan=None`` runs
    the identical scenario fault-free — the control every chaos benchmark
    compares goodput and tail latency against.
    """
    from repro.serving.cluster import (
        ClusterService,
        ClusterOverloadError,
        DeadlineExceededError,
        RetryPolicy,
        WorkerCrashError,
    )
    from repro.serving.router import QuarantinePolicy

    if requests <= 0:
        raise ValueError("requests must be positive")
    if offered_rps <= 0:
        raise ValueError("offered_rps must be positive")
    pool = ModelPool()
    network = pool.get(model)
    images = synthetic_images(network.input_shape, requests, seed=seed)
    schedule = () if plan is None else tuple(plan.schedule())

    cluster_kwargs.setdefault("models", (model,))
    cluster = ClusterService(
        workers=workers,
        retry=RetryPolicy() if retry is None else retry,
        quarantine=QuarantinePolicy() if quarantine is None else quarantine,
        faults=plan,
        **cluster_kwargs,
    )
    rng = np.random.default_rng(seed)
    offsets = poisson_offsets(rng, offered_rps, requests)
    futures: dict = {}
    shed = 0
    deadline_expired = 0
    failed = 0
    outputs: dict = {}
    try:
        def arrive(index: int) -> None:
            nonlocal shed, deadline_expired
            try:
                futures[index] = cluster.submit(
                    model, images[index], block=False, timeout=deadline_s)
            except ClusterOverloadError:
                shed += 1
            except DeadlineExceededError:
                deadline_expired += 1

        t0 = run_arrival_schedule(offsets, arrive)
        for index, future in futures.items():
            budget = drain_timeout_s - (time.perf_counter() - t0)
            try:
                outputs[index] = future.result(timeout=max(1.0, budget))
            except DeadlineExceededError:
                deadline_expired += 1
            except WorkerCrashError:
                failed += 1
            except FuturesTimeoutError:
                raise RuntimeError(
                    f"hung future: request {index} unresolved "
                    f"{drain_timeout_s:.0f}s after submission — the cluster "
                    f"lost track of admitted work under fault injection"
                )
        wall_s = time.perf_counter() - t0
        fault_events = tuple(cluster.fault_events)
        detail = cluster.cluster_report()
        p99_ms = (detail.aggregated[model].latency.p99_ms
                  if model in detail.aggregated else 0.0)
        baseline = cluster.baseline_service()
        try:
            expected = run_closed_loop(baseline, model, images).outputs
        finally:
            baseline.close()
    finally:
        cluster.close()
    bit_identical = all(
        np.array_equal(row, expected[index]) for index, row in outputs.items()
    )
    return ChaosResult(
        wall_s=wall_s,
        completed=len(outputs),
        shed=shed,
        deadline_expired=deadline_expired,
        failed=failed,
        retries=detail.retries,
        hedges=detail.hedges,
        quarantined=detail.quarantined,
        respawns=detail.respawns,
        requeued=detail.requeued,
        bit_identical=bit_identical,
        p99_ms=p99_ms,
        fault_events=fault_events,
        schedule=schedule,
        outputs=outputs,
    )


@dataclass(frozen=True)
class RolloutDrillResult:
    """Outcome of one live-rollout drill (:func:`run_rollout_drill`).

    Same lossless accounting contract as :class:`ChaosResult`: every
    offered request completed, was shed, or failed — a hung future
    raises instead of returning.  ``phase`` is the rollout's final
    phase; a drill that never reaches a terminal phase within the wait
    budget reports the live phase it was left in.
    """

    wall_s: float
    completed: int
    shed: int
    failed: int
    #: Final rollout phase (``committed`` / ``rolled_back`` / live phase).
    phase: str
    rollback_reason: Optional[str]
    old_digest: str
    new_digest: str
    #: Canary comparison accounting (``samples`` / ``mismatches`` / means).
    canary: dict
    bit_identical: bool
    #: JSON-stable rollout event records (``RolloutEvent.as_record``).
    timeline: tuple
    #: Completed rows keyed by offered-request index.
    outputs: dict

    @property
    def offered(self) -> int:
        return self.completed + self.shed + self.failed

    @property
    def goodput_rps(self) -> float:
        if self.wall_s <= 0:
            return float("inf") if self.completed else 0.0
        return self.completed / self.wall_s

    def table(self) -> str:
        rows = [
            ("old digest", self.old_digest[:16] + "..."),
            ("new digest", self.new_digest[:16] + "..."),
            ("final phase", self.phase),
            ("rollback reason", self.rollback_reason or "-"),
            ("offered", self.offered),
            ("completed", self.completed),
            ("shed", self.shed),
            ("failed", self.failed),
            ("goodput (req/s)", self.goodput_rps),
            ("canary samples", self.canary.get("samples", 0)),
            ("canary mismatches", self.canary.get("mismatches", 0)),
            ("bit identical", self.bit_identical),
            ("wall time (s)", self.wall_s),
        ]
        lines = [format_kv(rows, title="Live rollout drill")]
        if self.timeline:
            lines.append("")
            lines.append("rollout timeline:")
            for event in self.timeline:
                lines.append(
                    f"  t={event['t_s']:7.3f}s  {event['phase']:<11s} "
                    f"{event['kind']:<15s} {event['detail']}")
        return "\n".join(lines)


def run_rollout_drill(
    model: str = "MicroCNN",
    workers: int = 2,
    requests: int = 192,
    offered_rps: float = 250.0,
    seed: int = 0,
    divergent: bool = False,
    operator_rollback: bool = False,
    publish_at: float = 0.25,
    rollout=None,
    drain_timeout_s: float = 60.0,
    terminal_wait_s: float = 15.0,
    **cluster_kwargs,
) -> RolloutDrillResult:
    """Drive a live rollout under sustained open-loop load, end to end.

    Builds a cluster serving ``model``, offers ``requests`` Poisson
    arrivals at ``offered_rps`` with non-blocking admission, and — once
    the arrival cursor crosses ``publish_at`` (a fraction of the
    schedule) — publishes a v2 artifact and lets the canary → promote →
    commit sequence ride the drill's own traffic:

    * the default v2 is the serving network stamped with new release
      metadata: byte-distinct digest, bit-identical outputs — it must
      canary cleanly and commit with **zero shed and zero lost
      requests**;
    * ``divergent=True`` publishes a genuinely different network
      (fresh weights), which must auto-roll back on the first mismatch
      while every client answer keeps coming from the stable digest;
    * ``operator_rollback=True`` aborts the rollout by hand midway
      through the remaining schedule, exercising the ``rollback`` CLI
      path.

    Every completed output is verified bit-identical to a fault-free
    single-process baseline over the same images (served by whichever
    digest ended up active — both are output-identical unless the drill
    was divergent, in which case the divergent artifact must never have
    served a client answer).  A future unresolved ``drain_timeout_s``
    after its submission raises — a rollout must never lose admitted
    work.
    """
    from repro.models.zoo import build_phonebit_network, get_serving_config
    from repro.serving.cluster import (
        ClusterOverloadError,
        ClusterService,
        RetryPolicy,
        WorkerCrashError,
    )

    if requests <= 0:
        raise ValueError("requests must be positive")
    if not 0.0 <= publish_at <= 1.0:
        raise ValueError("publish_at must be in [0, 1]")

    config = get_serving_config(model)
    images = synthetic_images(config.input_shape, requests, seed=seed)
    # The candidate artifact: fresh weights when divergent (the canary
    # must catch it), otherwise the serving network stamped so only the
    # serialized bytes — and therefore the digest — change.
    if divergent:
        v2 = build_phonebit_network(config, rng=7 + seed)
        v2.metadata["release"] = "drill-divergent"
    else:
        v2 = build_phonebit_network(config)
        v2.metadata["release"] = "drill-v2"

    cluster_kwargs.setdefault("models", (model,))
    cluster_kwargs.setdefault("retry", RetryPolicy())
    cluster = ClusterService(workers=workers, **cluster_kwargs)

    rng = np.random.default_rng(seed)
    offsets = poisson_offsets(rng, offered_rps, requests)
    publish_index = min(requests - 1, int(publish_at * requests))
    rollback_index = min(requests - 1,
                         publish_index + max(1, (requests - publish_index) // 2))
    futures: dict = {}
    outputs: dict = {}
    shed = 0
    failed = 0
    new_digest = ""
    try:
        def arrive(index: int) -> None:
            nonlocal shed, new_digest
            if index == publish_index:
                new_digest = cluster.publish(v2, model=model, rollout=rollout)
            if operator_rollback and index == rollback_index:
                try:
                    cluster.rollback(model, reason="drill operator rollback")
                except (KeyError, RuntimeError):
                    pass  # already terminal — nothing to abort
            try:
                futures[index] = cluster.submit(model, images[index],
                                                block=False)
            except ClusterOverloadError:
                shed += 1

        t0 = run_arrival_schedule(offsets, arrive)
        for index, future in futures.items():
            budget = drain_timeout_s - (time.perf_counter() - t0)
            try:
                outputs[index] = future.result(timeout=max(1.0, budget))
            except WorkerCrashError:
                failed += 1
            except FuturesTimeoutError:
                raise RuntimeError(
                    f"hung future: request {index} unresolved "
                    f"{drain_timeout_s:.0f}s after submission — the cluster "
                    f"lost track of admitted work during the rollout")
        # Bounded wait for the controller to reach a terminal phase (the
        # monitor thread keeps ticking timeouts, so this cannot hang).
        deadline = time.perf_counter() + terminal_wait_s
        status = cluster.rollout_status(model)[0]
        while (status["phase"] not in ("committed", "rolled_back")
               and time.perf_counter() < deadline):
            time.sleep(0.05)
            status = cluster.rollout_status(model)[0]
        timeline = tuple(cluster.rollout_timeline(model))
        wall_s = time.perf_counter() - t0
        baseline = cluster.baseline_service()
        try:
            expected = run_closed_loop(baseline, model, images).outputs
        finally:
            baseline.close()
    finally:
        cluster.close()
    bit_identical = all(
        np.array_equal(row, expected[index]) for index, row in outputs.items()
    )
    return RolloutDrillResult(
        wall_s=wall_s,
        completed=len(outputs),
        shed=shed,
        failed=failed,
        phase=str(status["phase"]),
        rollback_reason=status["rollback_reason"],
        old_digest=str(status["old_digest"]),
        new_digest=str(status["new_digest"]),
        canary=dict(status["canary"]),
        bit_identical=bit_identical,
        timeline=timeline,
        outputs=outputs,
    )


def sequential_baseline(
    engine: PhoneBitEngine, network, images: np.ndarray
) -> tuple:
    """Per-request ``engine.run`` over ``images``: (outputs, wall_s).

    This is the pre-serving client path exactly as shipped — including the
    per-request simulated cost estimate ``engine.run`` always computes.
    """
    outputs = []
    t0 = time.perf_counter()
    for i in range(images.shape[0]):
        outputs.append(engine.run(network, images[i:i + 1]).output.data[0])
    wall_s = time.perf_counter() - t0
    return np.stack(outputs), wall_s


def sequential_forward_baseline(
    engine: PhoneBitEngine, network, images: np.ndarray
) -> float:
    """Wall seconds for per-request execution *without* the cost estimate.

    Reported alongside the ``engine.run`` baseline so the benchmark records
    separate how much of the serving speedup comes from micro-batching the
    kernels versus from not re-running the cost model per request.
    """
    t0 = time.perf_counter()
    for i in range(images.shape[0]):
        engine.run_batch(network, images[i:i + 1], collect_estimate=False)
    return time.perf_counter() - t0


def throughput_sweep(
    model: str = "MicroCNN",
    offered_batches: Sequence[int] = (1, 4, 16, 64),
    requests_per_level: int = 64,
    max_wait_ms: float = 2.0,
    seed: int = 0,
    engine: Optional[PhoneBitEngine] = None,
    pool: Optional[ModelPool] = None,
    chunk_bytes: Optional[int] = None,
) -> List[dict]:
    """Closed-loop serving throughput vs the sequential baseline.

    For each offered batch level ``b`` a fresh service is configured with
    ``max_batch_size=b`` and fed ``requests_per_level`` requests
    back-to-back; the same images then run through per-request
    ``engine.run`` calls for the baseline.  Outputs are checked
    bit-identical before anything is recorded.
    """
    engine = engine or PhoneBitEngine()
    pool = pool or ModelPool()
    network = pool.get(model)
    images = synthetic_images(network.input_shape, requests_per_level, seed=seed)

    # One warm pass (weight packing, NumPy internals) outside all timings.
    engine.run_batch(network, images[:2], collect_estimate=False)
    baseline_out, baseline_s = sequential_baseline(engine, network, images)
    baseline_rps = images.shape[0] / baseline_s if baseline_s > 0 else float("inf")
    forward_s = sequential_forward_baseline(engine, network, images)
    forward_rps = images.shape[0] / forward_s if forward_s > 0 else float("inf")

    records: List[dict] = []
    for offered in offered_batches:
        service = InferenceService(
            pool=pool,
            engine=engine,
            max_batch_size=int(offered),
            max_wait_ms=max_wait_ms,
            cache_capacity=0,  # throughput measurements must not hit the cache
            chunk_bytes=chunk_bytes,
        )
        try:
            result = run_closed_loop(service, model, images)
        finally:
            service.close()
        if not np.array_equal(result.outputs, baseline_out):
            raise AssertionError(
                f"serving outputs diverged from unbatched execution at "
                f"offered batch {offered}"
            )
        report = result.report
        records.append(
            {
                "op": "serving_throughput",
                "model": model,
                "offered_batch": int(offered),
                # Canonical trajectory aliases (tools/check_bench_schema.py):
                # every BENCH record carries {op|model, shape|batch,
                # ns_per_op|req_per_s} under exactly those key spellings.
                "batch": int(offered),
                "req_per_s": result.achieved_rps,
                "requests": int(images.shape[0]),
                "requests_per_s": result.achieved_rps,
                "sequential_rps": baseline_rps,
                "sequential_forward_rps": forward_rps,
                "speedup_vs_sequential": (
                    result.achieved_rps / baseline_rps if baseline_rps else float("inf")
                ),
                "speedup_vs_forward_only": (
                    result.achieved_rps / forward_rps if forward_rps else float("inf")
                ),
                "latency_p50_ms": report.latency.p50_ms,
                "latency_p99_ms": report.latency.p99_ms,
                "mean_batch_size": report.scheduler.mean_batch_size,
                "batches": report.scheduler.batch_count,
                "bit_identical": True,
            }
        )
    return records
