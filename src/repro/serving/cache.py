"""LRU response cache keyed on an input digest.

Binarized inference is deterministic, so two requests carrying the same
image for the same model must produce bit-identical outputs — which makes
responses safely cacheable.  The key is a SHA-256 digest over the model
name plus the input array's dtype, shape and raw bytes, so any difference
in content *or* interpretation produces a different key.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np


def input_digest(model_name: str, array: np.ndarray) -> str:
    """Collision-resistant cache key for (model, input) pairs."""
    array = np.ascontiguousarray(array)
    h = hashlib.sha256()
    h.update(model_name.encode("utf-8"))
    h.update(b"\x00")
    h.update(str(array.dtype).encode("ascii"))
    h.update(repr(array.shape).encode("ascii"))
    h.update(array.tobytes())
    return h.hexdigest()


def response_cache_key(model_name: str, artifact_digest: str,
                       array: np.ndarray) -> str:
    """Cache key for (model, *artifact version*, input) triples.

    The artifact digest is part of the key, never just the model name: two
    versions of one model (a rollout's stable and canary weights) produce
    different outputs for the same image, so a name-keyed cache would let
    a rollback serve responses computed by the version that was rolled
    back.  ``@`` cannot appear in a SHA-256 hex digest, so the namespace
    cannot collide with a model name that happens to embed one.
    """
    return input_digest(f"{model_name}@{artifact_digest}", array)


@dataclass(frozen=True)
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LRUResponseCache:
    """Thread-safe least-recently-used response cache.

    Values are stored as read-only arrays; callers share the cached object
    rather than receiving copies (responses are immutable by convention).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[np.ndarray]:
        """Look up a response, refreshing its recency.  None on miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: np.ndarray) -> None:
        """Insert a response, evicting the least recently used on overflow.

        A still-writable array is copied before freezing — flipping the
        write flag on the caller's own object would race whoever already
        holds a reference to it (and let their writes poison the cache).
        """
        value = np.asarray(value)
        if value.flags.writeable:
            value = value.copy()
            value.setflags(write=False)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
