"""Request routing, admission control and model pinning for the cluster.

:class:`LeastOutstandingRouter` is pure bookkeeping — no processes, no
queues, no sockets — so the routing policy is unit-testable in isolation
and the cluster front-end (:mod:`repro.serving.cluster`) stays an I/O
shell around it.  Workers are opaque endpoint ids: the router neither
knows nor cares whether an id names a forked child process on a pipe
transport or a remote host that self-registered over TCP
(:mod:`repro.serving.transport`) — membership churn from crashes,
connection losses and re-admissions all arrive as the same
``add_worker`` / ``remove_worker`` calls.  The policy has three layers:

* **Least outstanding requests** — a request goes to the eligible worker
  with the fewest requests currently dispatched-but-unanswered.  This is
  the classic load-balancing improvement over round-robin for workloads
  with variable batch latency: a worker stuck on a big micro-batch simply
  stops winning ties until it drains.
* **Per-model consistent tie-breaking (rendezvous hashing)** — ties are
  broken by the highest-random-weight hash of ``(model, worker)``, so each
  model has a stable preference order over workers.  At low load one
  model's traffic keeps landing on the same workers (warm plans, warm
  caches); when workers join or die, only the affected slots reshuffle.
* **Per-model pinning (rendezvous top-K)** — with :meth:`set_pin_counts`,
  a model routes only within the top-``K`` workers of its rendezvous
  preference order, restricted to workers that have *declared* the model
  (``add_worker(models=...)`` / :meth:`add_worker_model`).  A mixed fleet
  (VGG16 next to MicroCNN) then attaches only its pinned artifacts per
  worker — the cluster keeps the declared sets converging on the top-K
  target as membership churns.

Admission control is a bounded outstanding window per worker
(``max_outstanding``): when every eligible worker is at its bound the
router *sheds* instead of queueing unboundedly, and reports a suggested
retry-after so clients can back off (the cluster surfaces this as
:class:`~repro.serving.cluster.ClusterOverloadError`).  The retry horizon
is computed over the **model's eligible worker set** — a model pinned to
2 of 16 workers drains through 2 workers, not 16.

Slot accounting is exact: :meth:`release` returns a slot only when the
worker actually holds one, and every registration gets a fresh
**generation** (:meth:`add_worker` returns it) so a release scoped to a
dead incarnation of a re-registered worker id is a no-op instead of
stealing a slot the new incarnation never granted.  The invariant
``dispatched == completed + Σ outstanding`` therefore holds across any
interleaving of acquire/release/remove/re-register
(``tests/test_autoscale.py`` drives randomized sequences against it).

Examples
--------
>>> router = LeastOutstandingRouter(max_outstanding=2)
>>> router.add_worker("w0"); router.add_worker("w1")
1
2
>>> first = router.acquire("MicroCNN")
>>> second = router.acquire("MicroCNN")
>>> {first, second} == {"w0", "w1"}  # least-outstanding spreads the pair
True
>>> router.acquire("MicroCNN") in ("w0", "w1")
True
>>> router.acquire("MicroCNN") in ("w0", "w1")
True
>>> router.acquire("MicroCNN") is None  # both at the bound: shed
True
>>> router.release(first)
True
>>> router.acquire("MicroCNN") == first
True
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

__all__ = [
    "LeastOutstandingRouter",
    "RouterStats",
    "pin_counts_from_shares",
    "rendezvous_score",
]


def rendezvous_score(model: str, worker: str) -> int:
    """Stable highest-random-weight score for a ``(model, worker)`` pair."""
    digest = hashlib.blake2b(
        f"{model}\x00{worker}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def pin_counts_from_shares(shares: Mapping[str, float], workers: int,
                           min_workers: int = 1) -> Dict[str, int]:
    """Pin-count per model from its traffic share of a ``workers``-size fleet.

    Each model gets ``round(share_fraction * workers)`` workers, clamped to
    ``[min_workers, workers]`` — a model must always be servable somewhere,
    and can never be pinned wider than the fleet.  Shares need not sum to
    one (pass request rates directly); they are normalized here.

    Examples
    --------
    >>> pin_counts_from_shares({"MicroCNN": 3.0, "VGG16": 1.0}, workers=4)
    {'MicroCNN': 3, 'VGG16': 1}
    >>> pin_counts_from_shares({"A": 1.0, "B": 0.0}, workers=8)
    {'A': 8, 'B': 1}
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if min_workers < 1:
        raise ValueError("min_workers must be at least 1")
    total = float(sum(shares.values()))
    counts: Dict[str, int] = {}
    for model, share in shares.items():
        fraction = (share / total) if total > 0 else 1.0
        counts[model] = max(min(min_workers, workers),
                            min(workers, round(fraction * workers)))
    return counts


@dataclass(frozen=True)
class RouterStats:
    """Counters over the router's lifetime."""

    dispatched: int
    completed: int
    shed: int
    workers: int

    @property
    def outstanding(self) -> int:
        return self.dispatched - self.completed


class LeastOutstandingRouter:
    """Pick workers by least-outstanding with consistent tie-breaking.

    Parameters
    ----------
    max_outstanding:
        Admission-control bound per worker: :meth:`acquire` returns ``None``
        (shed) when every eligible worker already has this many requests in
        flight.  This bounds every per-worker queue — the cluster's
        backpressure comes from here, not from unbounded OS pipes.
    pin_counts:
        Optional ``{model: K}`` mapping enabling per-model pinning: each
        listed model routes only within the top-``K`` workers of its
        rendezvous order (see :meth:`set_pin_counts`).  Unlisted models
        stay unpinned (any declaring worker is eligible).
    """

    def __init__(self, max_outstanding: int = 64,
                 pin_counts: Optional[Mapping[str, int]] = None) -> None:
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be at least 1")
        self.max_outstanding = int(max_outstanding)
        self._lock = threading.Lock()
        self._outstanding: Dict[str, int] = {}
        #: Declared servable models per worker; ``None`` = serves any model.
        self._models: Dict[str, Optional[Set[str]]] = {}
        #: Registration generation per worker id (kept after removal so a
        #: re-registration under the same id gets a strictly newer value).
        self._generations: Dict[str, int] = {}
        self._generation_counter = 0
        self._pin_counts: Dict[str, int] = {}
        self._dispatched = 0
        self._completed = 0
        self._shed = 0
        if pin_counts:
            self.set_pin_counts(pin_counts)

    # ------------------------------------------------------------- pinning
    def set_pin_counts(self, pin_counts: Optional[Mapping[str, int]]) -> None:
        """Set (or clear, with ``None``) the per-model pinning widths.

        ``{model: K}`` restricts each listed model to the top-``K`` workers
        of its rendezvous preference order among the workers declaring it.
        ``K`` is clamped to at least 1 at eligibility time, so a pinned
        model is servable whenever *any* declaring worker is registered.
        """
        with self._lock:
            if pin_counts is None:
                self._pin_counts = {}
                return
            for model, count in pin_counts.items():
                if int(count) < 1:
                    raise ValueError(
                        f"pin count for {model!r} must be at least 1"
                    )
            self._pin_counts = {model: int(count)
                                for model, count in pin_counts.items()}

    def pin_counts(self) -> Dict[str, int]:
        """Snapshot of the configured ``{model: K}`` pinning widths."""
        with self._lock:
            return dict(self._pin_counts)

    def _candidates(self, model: str) -> List[str]:
        """Workers declaring ``model`` (lock held by caller)."""
        return [worker for worker, served in self._models.items()
                if served is None or model in served]

    def _eligible(self, model: str) -> List[str]:
        """Eligible worker set for ``model`` (lock held by caller).

        The top-``K`` declaring workers by rendezvous score when the model
        is pinned; every declaring worker otherwise.  Computing the top-K
        over the *declaring* set (not all registered workers) keeps a
        pinned model servable during membership churn: the cluster's
        attach refresh converges the declared sets onto the ideal top-K,
        and routing never outruns an attach.
        """
        candidates = self._candidates(model)
        count = self._pin_counts.get(model)
        if count is None or count >= len(candidates):
            return candidates
        candidates.sort(key=lambda worker: rendezvous_score(model, worker),
                        reverse=True)
        return candidates[: max(1, count)]

    def eligible_workers(self, model: str) -> List[str]:
        """Workers ``model`` may currently route to (pinning applied)."""
        with self._lock:
            return sorted(self._eligible(model))

    # ------------------------------------------------------------- membership
    def add_worker(self, worker: str,
                   models: Optional[Sequence[str]] = None) -> int:
        """Register a worker; returns its registration **generation**.

        ``models`` declares which models the worker can serve (``None`` =
        any).  Re-registering a live worker updates the declaration but
        keeps its slots and generation; re-registering a *removed* worker
        id starts a fresh incarnation with a new generation — releases
        scoped to the old generation are no-ops against it.
        """
        with self._lock:
            declared = None if models is None else set(models)
            if worker in self._outstanding:
                self._models[worker] = declared
                return self._generations[worker]
            self._outstanding[worker] = 0
            self._models[worker] = declared
            self._generation_counter += 1
            self._generations[worker] = self._generation_counter
            return self._generation_counter

    def add_worker_model(self, worker: str, model: str) -> None:
        """Declare one more servable model on a registered worker (no-op
        for unknown workers or workers already declared serve-anything)."""
        with self._lock:
            served = self._models.get(worker)
            if served is not None:
                served.add(model)

    def worker_models(self, worker: str) -> Optional[Set[str]]:
        """Declared servable models for ``worker`` (``None`` = any)."""
        with self._lock:
            served = self._models.get(worker)
            return None if served is None else set(served)

    def generation(self, worker: str) -> Optional[int]:
        """Current registration generation of ``worker`` (``None`` if it is
        not registered — removed workers forget nothing, but expose
        nothing either)."""
        with self._lock:
            if worker not in self._outstanding:
                return None
            return self._generations[worker]

    def remove_worker(self, worker: str) -> int:
        """Drop a worker; returns the outstanding count it died with.

        The dropped slots will never see a ``release`` (their responses
        died with the worker), so they are credited to the completed
        counter here — otherwise every crashed in-flight request would
        inflate ``RouterStats.outstanding`` forever, since its re-dispatch
        counts as a fresh acquire.
        """
        with self._lock:
            count = self._outstanding.pop(worker, 0)
            self._models.pop(worker, None)
            self._completed += count
            return count

    def workers(self) -> List[str]:
        with self._lock:
            return sorted(self._outstanding)

    def outstanding(self, worker: str) -> int:
        with self._lock:
            return self._outstanding.get(worker, 0)

    # ------------------------------------------------------------- routing
    def acquire(self, model: str, force: bool = False,
                record_shed: bool = True) -> Optional[str]:
        """Reserve a dispatch slot; returns the worker id or ``None`` (shed).

        The caller owns the returned slot and must pair it with
        :meth:`release` (request answered) or :meth:`remove_worker`
        (worker died; in-flight slots die with it).  ``force=True`` ignores
        the admission bound *and* the pinning top-K preference — used when
        re-dispatching work that was already admitted once (crashed-worker
        requeue must not shed) — but never the declared-model restriction:
        a worker that has not attached a model's artifact cannot serve it.
        ``record_shed=False`` keeps a ``None`` return out of the shed
        counter — a backpressured caller polling for a free slot is
        *waiting*, not shedding, and must not inflate the statistic.
        """
        with self._lock:
            eligible = (self._candidates(model) if force
                        else self._eligible(model))
            best: Optional[str] = None
            best_key = None
            for worker in eligible:
                count = self._outstanding[worker]
                if count >= self.max_outstanding and not force:
                    continue
                key = (count, -rendezvous_score(model, worker))
                if best_key is None or key < best_key:
                    best, best_key = worker, key
            if best is None:
                if record_shed:
                    self._shed += 1
                return None
            self._outstanding[best] += 1
            self._dispatched += 1
            return best

    def record_shed(self) -> None:
        """Count one client-visible shed (used with ``record_shed=False``)."""
        with self._lock:
            self._shed += 1

    def release(self, worker: str, generation: Optional[int] = None) -> bool:
        """Return one slot on ``worker``; ``True`` iff a held slot came back.

        No-ops (returning ``False``) when the worker is not registered,
        holds no slots, or — with ``generation`` given — has re-registered
        under a newer generation since the slot was acquired.  All three
        are late answers whose slots were already credited to the
        completed counter by :meth:`remove_worker`; counting them again
        would overstate completions and (for the re-registration case)
        steal a slot the new incarnation never granted.
        """
        with self._lock:
            count = self._outstanding.get(worker)
            if count is None or count <= 0:
                return False
            if (generation is not None
                    and generation != self._generations[worker]):
                return False
            self._outstanding[worker] = count - 1
            self._completed += 1
            return True

    def retry_after_s(self, batch_wall_ms: float = 2.0,
                      model: Optional[str] = None) -> float:
        """Suggested client back-off when shedding.

        A saturated cluster drains roughly one batch per eligible worker
        per batch wall time; half that horizon is a reasonable first
        retry.  With ``model`` given the horizon is computed over the
        model's **eligible** worker set — a model pinned to 2 of 16
        workers drains 8× slower than the fleet-wide figure would claim.
        """
        with self._lock:
            if model is None:
                workers = max(1, len(self._outstanding))
            else:
                workers = max(1, len(self._eligible(model)))
        return max(0.001, (batch_wall_ms / 1000.0) * self.max_outstanding
                   / (2.0 * workers))

    # ------------------------------------------------------------- stats
    def stats(self) -> RouterStats:
        with self._lock:
            return RouterStats(
                dispatched=self._dispatched,
                completed=self._completed,
                shed=self._shed,
                workers=len(self._outstanding),
            )
