"""Request routing, admission control and model pinning for the cluster.

:class:`LeastOutstandingRouter` is pure bookkeeping — no processes, no
queues, no sockets — so the routing policy is unit-testable in isolation
and the cluster front-end (:mod:`repro.serving.cluster`) stays an I/O
shell around it.  Workers are opaque endpoint ids: the router neither
knows nor cares whether an id names a forked child process on a pipe
transport or a remote host that self-registered over TCP
(:mod:`repro.serving.transport`) — membership churn from crashes,
connection losses and re-admissions all arrive as the same
``add_worker`` / ``remove_worker`` calls.  The policy has three layers:

* **Least outstanding requests** — a request goes to the eligible worker
  with the fewest requests currently dispatched-but-unanswered.  This is
  the classic load-balancing improvement over round-robin for workloads
  with variable batch latency: a worker stuck on a big micro-batch simply
  stops winning ties until it drains.
* **Per-model consistent tie-breaking (rendezvous hashing)** — ties are
  broken by the highest-random-weight hash of ``(model, worker)``, so each
  model has a stable preference order over workers.  At low load one
  model's traffic keeps landing on the same workers (warm plans, warm
  caches); when workers join or die, only the affected slots reshuffle.
* **Per-model pinning (rendezvous top-K)** — with :meth:`set_pin_counts`,
  a model routes only within the top-``K`` workers of its rendezvous
  preference order, restricted to workers that have *declared* the model
  (``add_worker(models=...)`` / :meth:`add_worker_model`).  A mixed fleet
  (VGG16 next to MicroCNN) then attaches only its pinned artifacts per
  worker — the cluster keeps the declared sets converging on the top-K
  target as membership churns.

Admission control is a bounded outstanding window per worker
(``max_outstanding``): when every eligible worker is at its bound the
router *sheds* instead of queueing unboundedly, and reports a suggested
retry-after so clients can back off (the cluster surfaces this as
:class:`~repro.serving.cluster.ClusterOverloadError`).  The retry horizon
is computed over the **model's eligible worker set** — a model pinned to
2 of 16 workers drains through 2 workers, not 16.

Admission is **SLO-class tiered** when ``slo_reserves`` is configured:
each request carries a class from :data:`SLO_CLASSES`
(``interactive`` > ``standard`` > ``batch``) and each class may only fill
a worker up to ``max_outstanding - reserve(class)`` slots.  Reserves are
monotone down-tier (interactive ≤ standard ≤ batch), so under pressure
the batch tier sheds first, then standard, and interactive last — lower
tiers can never occupy the slots reserved above them.
:func:`default_slo_reserves` derives a reserve table from a single
*interactive floor* knob.  :meth:`retry_after_s` scales the suggested
back-off by each class's share of the window: a batch client at half the
window is told to wait twice as long as an interactive one.

Slot accounting is exact: :meth:`release` returns a slot only when the
worker actually holds one, and every registration gets a fresh
**generation** (:meth:`add_worker` returns it) so a release scoped to a
dead incarnation of a re-registered worker id is a no-op instead of
stealing a slot the new incarnation never granted.  The invariant
``dispatched == completed + Σ outstanding`` therefore holds across any
interleaving of acquire/release/remove/re-register
(``tests/test_autoscale.py`` drives randomized sequences against it).

A fourth, health-driven layer sits on top (:class:`QuarantinePolicy`):
the cluster feeds per-request outcomes back (:meth:`record_completion` /
:meth:`record_failure`), the router tracks an EWMA completion latency per
worker, and a worker whose latency degrades far beyond the fleet median —
or that fails several requests in a row — is **quarantined**: ejected
from eligibility (like pinning, never to the point of making a model
unservable) until it earns probation re-admission with ``N`` consecutive
clean heartbeats (:meth:`record_clean_heartbeat`).  Quarantine only
shapes *routing preference*; slot accounting and the declared-model
restriction are untouched, so the invariant above is oblivious to it.

Examples
--------
>>> router = LeastOutstandingRouter(max_outstanding=2)
>>> router.add_worker("w0"); router.add_worker("w1")
1
2
>>> first = router.acquire("MicroCNN")
>>> second = router.acquire("MicroCNN")
>>> {first, second} == {"w0", "w1"}  # least-outstanding spreads the pair
True
>>> router.acquire("MicroCNN") in ("w0", "w1")
True
>>> router.acquire("MicroCNN") in ("w0", "w1")
True
>>> router.acquire("MicroCNN") is None  # both at the bound: shed
True
>>> router.release(first)
True
>>> router.acquire("MicroCNN") == first
True
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

__all__ = [
    "SLO_CLASSES",
    "SLO_TIERS",
    "LeastOutstandingRouter",
    "QuarantinePolicy",
    "RouterStats",
    "default_slo_reserves",
    "pin_counts_from_shares",
    "rendezvous_score",
    "validate_slo",
]

#: SLO classes, highest priority first.  Tiered admission sheds the last
#: class first and protects the first class longest.
SLO_CLASSES = ("interactive", "standard", "batch")

#: Class name → tier index (0 = highest priority).
SLO_TIERS = {name: tier for tier, name in enumerate(SLO_CLASSES)}

#: Class a request belongs to when no ``slo`` is given.
SLO_DEFAULT = "standard"


def validate_slo(slo: Optional[str]) -> str:
    """Return the effective SLO class name; raise on an unknown one."""
    if slo is None:
        return SLO_DEFAULT
    if slo not in SLO_TIERS:
        raise ValueError(
            f"unknown SLO class {slo!r}; expected one of {SLO_CLASSES}"
        )
    return slo


def default_slo_reserves(max_outstanding: int,
                         interactive_floor: Optional[int] = None
                         ) -> Dict[str, int]:
    """Reserve table from a single *interactive floor* knob.

    ``interactive_floor`` slots per worker are reserved for the
    interactive tier alone (default: a quarter of the window, at least
    one).  The batch tier is additionally confined to half of whatever
    remains, so it sheds strictly before standard does.

    Examples
    --------
    >>> default_slo_reserves(8)
    {'interactive': 0, 'standard': 2, 'batch': 5}
    >>> default_slo_reserves(16, interactive_floor=4)
    {'interactive': 0, 'standard': 4, 'batch': 10}
    """
    if max_outstanding < 1:
        raise ValueError("max_outstanding must be at least 1")
    if interactive_floor is None:
        interactive_floor = max(1, max_outstanding // 4) \
            if max_outstanding > 1 else 0
    floor = int(interactive_floor)
    if not 0 <= floor < max_outstanding:
        raise ValueError(
            "interactive_floor must be in [0, max_outstanding)"
        )
    remaining = max_outstanding - floor
    batch_extra = remaining - max(1, remaining // 2)
    return {
        "interactive": 0,
        "standard": floor,
        "batch": min(max_outstanding - 1, floor + batch_extra),
    }


def rendezvous_score(model: str, worker: str) -> int:
    """Stable highest-random-weight score for a ``(model, worker)`` pair."""
    digest = hashlib.blake2b(
        f"{model}\x00{worker}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def pin_counts_from_shares(shares: Mapping[str, float], workers: int,
                           min_workers: int = 1) -> Dict[str, int]:
    """Pin-count per model from its traffic share of a ``workers``-size fleet.

    Each model gets ``round(share_fraction * workers)`` workers, clamped to
    ``[min_workers, workers]`` — a model must always be servable somewhere,
    and can never be pinned wider than the fleet.  Shares need not sum to
    one (pass request rates directly); they are normalized here.

    Examples
    --------
    >>> pin_counts_from_shares({"MicroCNN": 3.0, "VGG16": 1.0}, workers=4)
    {'MicroCNN': 3, 'VGG16': 1}
    >>> pin_counts_from_shares({"A": 1.0, "B": 0.0}, workers=8)
    {'A': 8, 'B': 1}
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if min_workers < 1:
        raise ValueError("min_workers must be at least 1")
    total = float(sum(shares.values()))
    counts: Dict[str, int] = {}
    for model, share in shares.items():
        fraction = (share / total) if total > 0 else 1.0
        counts[model] = max(min(min_workers, workers),
                            min(workers, round(fraction * workers)))
    return counts


@dataclass(frozen=True)
class QuarantinePolicy:
    """When to eject a degraded worker, and how it earns its way back.

    A worker is quarantined when either trigger fires:

    * **latency** — its EWMA completion latency exceeds ``latency_factor``
      × the fleet median EWMA, once it has at least ``min_samples``
      completions *and* the fleet has a second worker to compare against
      (a fleet of one has no notion of "slow");
    * **failures** — ``max_consecutive_failures`` requests in a row
      failed on it (crash/timeout/requeue all count; one success resets).

    Quarantine ends by **probation**: ``probation_heartbeats`` consecutive
    clean heartbeats (a heartbeat with no failure since the previous one)
    re-admit the worker with its health counters reset.  A failure during
    probation restarts the count.

    Examples
    --------
    >>> policy = QuarantinePolicy(max_consecutive_failures=2,
    ...                           probation_heartbeats=2)
    >>> router = LeastOutstandingRouter(quarantine=policy)
    >>> router.add_worker("w0"); router.add_worker("w1")
    1
    2
    >>> router.record_failure("w0"); router.record_failure("w0")
    >>> router.quarantined_workers()
    ['w0']
    >>> router.acquire("m")  # w0 no longer eligible
    'w1'
    >>> router.record_clean_heartbeat("w0")
    >>> router.record_clean_heartbeat("w0")
    >>> router.quarantined_workers()
    []
    """

    #: EWMA latency beyond this multiple of the fleet median quarantines.
    latency_factor: float = 4.0
    #: Completions required before the latency trigger may fire.
    min_samples: int = 8
    #: Consecutive failures that quarantine regardless of latency.
    max_consecutive_failures: int = 3
    #: Consecutive clean heartbeats that end a quarantine.
    probation_heartbeats: int = 5
    #: EWMA smoothing factor for per-worker completion latency.
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.latency_factor <= 1.0:
            raise ValueError("latency_factor must exceed 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be at least 1")
        if self.probation_heartbeats < 1:
            raise ValueError("probation_heartbeats must be at least 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


class _WorkerHealth:
    """Mutable per-worker health state (router lock guards all access)."""

    __slots__ = ("ewma_latency_s", "samples", "consecutive_failures",
                 "quarantined", "probation_clean")

    def __init__(self) -> None:
        self.ewma_latency_s: Optional[float] = None
        self.samples = 0
        self.consecutive_failures = 0
        self.quarantined = False
        self.probation_clean = 0


@dataclass(frozen=True)
class RouterStats:
    """Counters over the router's lifetime."""

    dispatched: int
    completed: int
    shed: int
    workers: int
    quarantined: int = 0

    @property
    def outstanding(self) -> int:
        return self.dispatched - self.completed


class LeastOutstandingRouter:
    """Pick workers by least-outstanding with consistent tie-breaking.

    Parameters
    ----------
    max_outstanding:
        Admission-control bound per worker: :meth:`acquire` returns ``None``
        (shed) when every eligible worker already has this many requests in
        flight.  This bounds every per-worker queue — the cluster's
        backpressure comes from here, not from unbounded OS pipes.
    pin_counts:
        Optional ``{model: K}`` mapping enabling per-model pinning: each
        listed model routes only within the top-``K`` workers of its
        rendezvous order (see :meth:`set_pin_counts`).  Unlisted models
        stay unpinned (any declaring worker is eligible).
    quarantine:
        Optional :class:`QuarantinePolicy` enabling health-driven worker
        ejection.  Without it the feedback methods
        (:meth:`record_completion` etc.) are cheap no-ops.
    slo_reserves:
        Optional ``{class: slots}`` mapping enabling SLO-class tiered
        admission: each class may only fill a worker up to
        ``max_outstanding - slots``.  See :meth:`set_slo_reserves`.
        Without it every class shares the one ``max_outstanding`` bound.
    """

    def __init__(self, max_outstanding: int = 64,
                 pin_counts: Optional[Mapping[str, int]] = None,
                 quarantine: Optional[QuarantinePolicy] = None,
                 slo_reserves: Optional[Mapping[str, int]] = None) -> None:
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be at least 1")
        self.max_outstanding = int(max_outstanding)
        self.quarantine_policy = quarantine
        self._lock = threading.Lock()
        self._slo_reserves: Dict[str, int] = {}
        self._shed_by_class: Dict[str, int] = {name: 0 for name in SLO_CLASSES}
        self._outstanding: Dict[str, int] = {}
        #: Declared servable models per worker; ``None`` = serves any model.
        self._models: Dict[str, Optional[Set[str]]] = {}
        #: Declared resident artifact versions per worker:
        #: ``worker -> model -> {digest}``.  Orthogonal to ``_models``:
        #: the model declaration answers "may this worker serve the
        #: model at all", the digest declaration answers "which exact
        #: artifact versions does it hold" — a rollout stages the new
        #: digest here before any request may be routed to it.
        self._digests: Dict[str, Dict[str, Set[str]]] = {}
        #: Registration generation per worker id (kept after removal so a
        #: re-registration under the same id gets a strictly newer value).
        self._generations: Dict[str, int] = {}
        self._generation_counter = 0
        self._pin_counts: Dict[str, int] = {}
        self._health: Dict[str, _WorkerHealth] = {}
        self._dispatched = 0
        self._completed = 0
        self._shed = 0
        if pin_counts:
            self.set_pin_counts(pin_counts)
        if slo_reserves:
            self.set_slo_reserves(slo_reserves)

    # ------------------------------------------------------------- SLO tiers
    def set_slo_reserves(self,
                         reserves: Optional[Mapping[str, int]]) -> None:
        """Set (or clear, with ``None``) the per-class slot reserves.

        ``{class: slots}`` withholds ``slots`` of every worker's
        ``max_outstanding`` window from that class, leaving them for
        higher tiers.  Reserves must be monotone down-tier (interactive ≤
        standard ≤ batch) — that monotonicity *is* the shed-order
        contract: whenever a class sheds, every class below it already
        sheds too.  Every class must keep at least one usable slot.
        """
        with self._lock:
            if reserves is None:
                self._slo_reserves = {}
                return
            table: Dict[str, int] = {}
            for name, slots in reserves.items():
                validate_slo(name)
                slots = int(slots)
                if not 0 <= slots < self.max_outstanding:
                    raise ValueError(
                        f"reserve for {name!r} must be in "
                        f"[0, {self.max_outstanding})"
                    )
                table[name] = slots
            ordered = [table.get(name, 0) for name in SLO_CLASSES]
            if any(low > high for low, high in zip(ordered, ordered[1:])):
                raise ValueError(
                    "slo_reserves must be monotone down-tier "
                    f"(interactive <= standard <= batch), got {table!r}"
                )
            self._slo_reserves = table

    def slo_reserves(self) -> Dict[str, int]:
        """Snapshot of the configured ``{class: reserved slots}`` table."""
        with self._lock:
            return dict(self._slo_reserves)

    def _slo_bound(self, slo: Optional[str]) -> int:
        """Per-worker admission bound for ``slo`` (lock held by caller)."""
        if not self._slo_reserves:
            return self.max_outstanding
        reserve = self._slo_reserves.get(validate_slo(slo), 0)
        return self.max_outstanding - reserve

    def slo_bounds(self) -> Dict[str, int]:
        """Effective per-worker admission bound per SLO class."""
        with self._lock:
            return {name: self._slo_bound(name) for name in SLO_CLASSES}

    def shed_by_class(self) -> Dict[str, int]:
        """Recorded sheds per SLO class (unclassed sheds count as
        ``standard``)."""
        with self._lock:
            return dict(self._shed_by_class)

    # ------------------------------------------------------------- pinning
    def set_pin_counts(self, pin_counts: Optional[Mapping[str, int]]) -> None:
        """Set (or clear, with ``None``) the per-model pinning widths.

        ``{model: K}`` restricts each listed model to the top-``K`` workers
        of its rendezvous preference order among the workers declaring it.
        ``K`` is clamped to at least 1 at eligibility time, so a pinned
        model is servable whenever *any* declaring worker is registered.
        """
        with self._lock:
            if pin_counts is None:
                self._pin_counts = {}
                return
            for model, count in pin_counts.items():
                if int(count) < 1:
                    raise ValueError(
                        f"pin count for {model!r} must be at least 1"
                    )
            self._pin_counts = {model: int(count)
                                for model, count in pin_counts.items()}

    def pin_counts(self) -> Dict[str, int]:
        """Snapshot of the configured ``{model: K}`` pinning widths."""
        with self._lock:
            return dict(self._pin_counts)

    def _candidates(self, model: str) -> List[str]:
        """Workers declaring ``model`` (lock held by caller)."""
        return [worker for worker, served in self._models.items()
                if served is None or model in served]

    def _eligible(self, model: str) -> List[str]:
        """Eligible worker set for ``model`` (lock held by caller).

        The top-``K`` declaring workers by rendezvous score when the model
        is pinned; every declaring worker otherwise.  Computing the top-K
        over the *declaring* set (not all registered workers) keeps a
        pinned model servable during membership churn: the cluster's
        attach refresh converges the declared sets onto the ideal top-K,
        and routing never outruns an attach.
        """
        candidates = self._candidates(model)
        count = self._pin_counts.get(model)
        if count is not None and count < len(candidates):
            candidates.sort(
                key=lambda worker: rendezvous_score(model, worker),
                reverse=True)
            candidates = candidates[: max(1, count)]
        # Quarantine filters *within* the pinned set, and backs off
        # entirely rather than make a model unservable: with every
        # eligible worker quarantined, the least-bad worker still beats
        # shedding forever.
        healthy = [worker for worker in candidates
                   if not self._is_quarantined(worker)]
        return healthy if healthy else candidates

    def eligible_workers(self, model: str) -> List[str]:
        """Workers ``model`` may currently route to (pinning applied)."""
        with self._lock:
            return sorted(self._eligible(model))

    # ------------------------------------------------------------- membership
    def add_worker(self, worker: str,
                   models: Optional[Sequence[str]] = None) -> int:
        """Register a worker; returns its registration **generation**.

        ``models`` declares which models the worker can serve (``None`` =
        any).  Re-registering a live worker updates the declaration but
        keeps its slots and generation; re-registering a *removed* worker
        id starts a fresh incarnation with a new generation — releases
        scoped to the old generation are no-ops against it.
        """
        with self._lock:
            declared = None if models is None else set(models)
            if worker in self._outstanding:
                self._models[worker] = declared
                return self._generations[worker]
            self._outstanding[worker] = 0
            self._models[worker] = declared
            # A fresh incarnation starts with a clean bill of health — the
            # process (or connection) the bad history belonged to is gone.
            # Its digest declarations died with the old process too.
            self._health.pop(worker, None)
            self._digests.pop(worker, None)
            self._generation_counter += 1
            self._generations[worker] = self._generation_counter
            return self._generation_counter

    def add_worker_model(self, worker: str, model: str) -> None:
        """Declare one more servable model on a registered worker (no-op
        for unknown workers or workers already declared serve-anything)."""
        with self._lock:
            served = self._models.get(worker)
            if served is not None:
                served.add(model)

    def remove_worker_model(self, worker: str, model: str) -> None:
        """Withdraw one model from a worker's served set (pin revocation).

        Also drops every version declaration the worker held for the
        model: a detached artifact must stop attracting digest-tagged
        traffic the moment the front end decides to revoke it, not when
        the worker's detach ack arrives.  No-op for unknown workers or
        serve-anything workers.
        """
        with self._lock:
            served = self._models.get(worker)
            if served is not None:
                served.discard(model)
            by_model = self._digests.get(worker)
            if by_model is not None:
                by_model.pop(model, None)
                if not by_model:
                    self._digests.pop(worker, None)

    def worker_models(self, worker: str) -> Optional[Set[str]]:
        """Declared servable models for ``worker`` (``None`` = any)."""
        with self._lock:
            served = self._models.get(worker)
            return None if served is None else set(served)

    # --------------------------------------------------------- digest layer
    def declare_digest(self, worker: str, model: str, digest: str) -> None:
        """Declare that ``worker`` holds artifact version ``digest`` of
        ``model`` (no-op for unregistered workers).

        Digest-tagged acquires (:meth:`acquire` with ``digest=``) route
        only to declaring holders, so a rollout's canary traffic cannot
        reach a worker before its prepare ack declared the new version.
        """
        with self._lock:
            if worker not in self._outstanding:
                return
            by_model = self._digests.setdefault(worker, {})
            by_model.setdefault(model, set()).add(digest)

    def revoke_digest(self, worker: str, model: str, digest: str) -> None:
        """Withdraw a version declaration (no-op when absent) — the
        worker detached the artifact, or a rollback retired it."""
        with self._lock:
            by_model = self._digests.get(worker)
            if not by_model:
                return
            held = by_model.get(model)
            if held is None:
                return
            held.discard(digest)
            if not held:
                del by_model[model]
            if not by_model:
                self._digests.pop(worker, None)

    def digest_holders(self, model: str, digest: str) -> List[str]:
        """Registered workers declaring ``digest`` of ``model``, sorted."""
        with self._lock:
            return sorted(
                worker for worker in self._outstanding
                if digest in self._digests.get(worker, {}).get(model, ())
            )

    def worker_digests(self, worker: str, model: str) -> Set[str]:
        """Versions of ``model`` declared resident on ``worker``."""
        with self._lock:
            return set(self._digests.get(worker, {}).get(model, ()))

    def generation(self, worker: str) -> Optional[int]:
        """Current registration generation of ``worker`` (``None`` if it is
        not registered — removed workers forget nothing, but expose
        nothing either)."""
        with self._lock:
            if worker not in self._outstanding:
                return None
            return self._generations[worker]

    def remove_worker(self, worker: str) -> int:
        """Drop a worker; returns the outstanding count it died with.

        The dropped slots will never see a ``release`` (their responses
        died with the worker), so they are credited to the completed
        counter here — otherwise every crashed in-flight request would
        inflate ``RouterStats.outstanding`` forever, since its re-dispatch
        counts as a fresh acquire.
        """
        with self._lock:
            count = self._outstanding.pop(worker, 0)
            self._models.pop(worker, None)
            self._health.pop(worker, None)
            self._digests.pop(worker, None)
            self._completed += count
            return count

    def workers(self) -> List[str]:
        with self._lock:
            return sorted(self._outstanding)

    def outstanding(self, worker: str) -> int:
        with self._lock:
            return self._outstanding.get(worker, 0)

    # ------------------------------------------------------------- health
    def _is_quarantined(self, worker: str) -> bool:
        """Lock held by caller."""
        health = self._health.get(worker)
        return health is not None and health.quarantined

    def _fleet_median_ewma(self, exclude: str) -> Optional[float]:
        """Median EWMA latency over the *other* live workers (lock held)."""
        values = sorted(
            health.ewma_latency_s
            for worker, health in self._health.items()
            if worker != exclude and worker in self._outstanding
            and health.ewma_latency_s is not None
        )
        if not values:
            return None
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def _health_entry(self, worker: str) -> Optional[_WorkerHealth]:
        """Lock held by caller; ``None`` for unknown workers / no policy."""
        if self.quarantine_policy is None:
            return None
        if worker not in self._outstanding:
            return None
        health = self._health.get(worker)
        if health is None:
            health = self._health[worker] = _WorkerHealth()
        return health

    def record_completion(self, worker: str, latency_s: float) -> None:
        """Feed one successful completion's wall latency into the worker's
        health.  May quarantine the worker if its EWMA latency has degraded
        past ``latency_factor`` × the fleet median (other workers only, so
        a uniformly slow fleet — big model, cold cache — never quarantines
        anyone)."""
        policy = self.quarantine_policy
        with self._lock:
            health = self._health_entry(worker)
            if health is None:
                return
            health.consecutive_failures = 0
            alpha = policy.ewma_alpha
            if health.ewma_latency_s is None:
                health.ewma_latency_s = float(latency_s)
            else:
                health.ewma_latency_s += alpha * (float(latency_s)
                                                  - health.ewma_latency_s)
            health.samples += 1
            if health.quarantined or health.samples < policy.min_samples:
                return
            median = self._fleet_median_ewma(exclude=worker)
            if (median is not None and median > 0.0
                    and health.ewma_latency_s
                    > policy.latency_factor * median):
                health.quarantined = True
                health.probation_clean = 0

    def record_failure(self, worker: str) -> None:
        """Feed one failed request (crash, timeout, requeue) into the
        worker's health; quarantines after ``max_consecutive_failures``
        in a row and restarts any probation in progress."""
        policy = self.quarantine_policy
        with self._lock:
            health = self._health_entry(worker)
            if health is None:
                return
            health.consecutive_failures += 1
            health.probation_clean = 0
            if (not health.quarantined and health.consecutive_failures
                    >= policy.max_consecutive_failures):
                health.quarantined = True

    def record_clean_heartbeat(self, worker: str) -> None:
        """A heartbeat arrived with no failure since the previous one.
        ``probation_heartbeats`` of these in a row end a quarantine with
        the worker's health counters reset."""
        policy = self.quarantine_policy
        with self._lock:
            health = self._health.get(worker)
            if (policy is None or health is None
                    or not health.quarantined
                    or worker not in self._outstanding):
                return
            health.probation_clean += 1
            if health.probation_clean >= policy.probation_heartbeats:
                self._health[worker] = _WorkerHealth()

    def quarantined_workers(self) -> List[str]:
        """Currently quarantined worker ids, sorted."""
        with self._lock:
            return sorted(worker for worker in self._outstanding
                          if self._is_quarantined(worker))

    def worker_ewma_latency_s(self, worker: str) -> Optional[float]:
        """The worker's EWMA completion latency (``None`` before the
        first completion or without a quarantine policy)."""
        with self._lock:
            health = self._health.get(worker)
            return None if health is None else health.ewma_latency_s

    # ------------------------------------------------------------- routing
    def acquire(self, model: str, force: bool = False,
                record_shed: bool = True,
                exclude: Optional[Sequence[str]] = None,
                slo: Optional[str] = None,
                digest: Optional[str] = None) -> Optional[str]:
        """Reserve a dispatch slot; returns the worker id or ``None`` (shed).

        The caller owns the returned slot and must pair it with
        :meth:`release` (request answered) or :meth:`remove_worker`
        (worker died; in-flight slots die with it).  ``force=True`` ignores
        the admission bound *and* the pinning top-K preference — used when
        re-dispatching work that was already admitted once (crashed-worker
        requeue must not shed) — but never the declared-model restriction:
        a worker that has not attached a model's artifact cannot serve it.
        ``record_shed=False`` keeps a ``None`` return out of the shed
        counter — a backpressured caller polling for a free slot is
        *waiting*, not shedding, and must not inflate the statistic.
        ``exclude`` removes specific workers from consideration — a hedged
        or retried dispatch must land somewhere *other* than the workers
        already holding the request's slots.  ``slo`` names the request's
        class: with :meth:`set_slo_reserves` configured, the class's
        tiered bound replaces ``max_outstanding`` for non-forced acquires,
        so lower tiers shed first and never touch the reserved headroom.
        ``digest`` pins the dispatch to workers *declaring* that artifact
        version of the model (:meth:`declare_digest`) — like the
        declared-model restriction, it holds even under ``force``: a
        version-tagged request must never execute against other weights.
        """
        excluded = frozenset(exclude) if exclude else frozenset()
        slo = validate_slo(slo)
        with self._lock:
            bound = self._slo_bound(slo)
            eligible = (self._candidates(model) if force
                        else self._eligible(model))
            best: Optional[str] = None
            best_key = None
            for worker in eligible:
                if worker in excluded:
                    continue
                if digest is not None and digest not in \
                        self._digests.get(worker, {}).get(model, ()):
                    continue
                count = self._outstanding[worker]
                if count >= bound and not force:
                    continue
                key = (count, -rendezvous_score(model, worker))
                if best_key is None or key < best_key:
                    best, best_key = worker, key
            if best is None:
                if record_shed:
                    self._shed += 1
                    self._shed_by_class[slo] += 1
                return None
            self._outstanding[best] += 1
            self._dispatched += 1
            return best

    def record_shed(self, slo: Optional[str] = None) -> None:
        """Count one client-visible shed (used with ``record_shed=False``)."""
        with self._lock:
            self._shed += 1
            self._shed_by_class[validate_slo(slo)] += 1

    def release(self, worker: str, generation: Optional[int] = None) -> bool:
        """Return one slot on ``worker``; ``True`` iff a held slot came back.

        No-ops (returning ``False``) when the worker is not registered,
        holds no slots, or — with ``generation`` given — has re-registered
        under a newer generation since the slot was acquired.  All three
        are late answers whose slots were already credited to the
        completed counter by :meth:`remove_worker`; counting them again
        would overstate completions and (for the re-registration case)
        steal a slot the new incarnation never granted.
        """
        with self._lock:
            count = self._outstanding.get(worker)
            if count is None or count <= 0:
                return False
            if (generation is not None
                    and generation != self._generations[worker]):
                return False
            self._outstanding[worker] = count - 1
            self._completed += 1
            return True

    def retry_after_s(self, batch_wall_ms: float = 2.0,
                      model: Optional[str] = None,
                      slo: Optional[str] = None) -> float:
        """Suggested client back-off when shedding.

        A saturated cluster drains roughly one batch per eligible worker
        per batch wall time; half that horizon is a reasonable first
        retry.  With ``model`` given the horizon is computed over the
        model's **eligible** worker set — a model pinned to 2 of 16
        workers drains 8× slower than the fleet-wide figure would claim.
        With ``slo`` given the horizon additionally scales by the class's
        share of the window: a batch request admitted through half the
        slots must wait through twice the drain an interactive one would.
        """
        slo = validate_slo(slo)
        with self._lock:
            if model is None:
                workers = max(1, len(self._outstanding))
            else:
                workers = max(1, len(self._eligible(model)))
            tier_factor = self.max_outstanding / max(1, self._slo_bound(slo))
        return max(0.001, (batch_wall_ms / 1000.0) * self.max_outstanding
                   * tier_factor / (2.0 * workers))

    # ------------------------------------------------------------- stats
    def stats(self) -> RouterStats:
        with self._lock:
            return RouterStats(
                dispatched=self._dispatched,
                completed=self._completed,
                shed=self._shed,
                workers=len(self._outstanding),
                quarantined=sum(1 for worker in self._outstanding
                                if self._is_quarantined(worker)),
            )
