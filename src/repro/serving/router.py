"""Request routing and admission control for the serving cluster.

:class:`LeastOutstandingRouter` is pure bookkeeping — no processes, no
queues, no sockets — so the routing policy is unit-testable in isolation
and the cluster front-end (:mod:`repro.serving.cluster`) stays an I/O
shell around it.  Workers are opaque endpoint ids: the router neither
knows nor cares whether an id names a forked child process on a pipe
transport or a remote host that self-registered over TCP
(:mod:`repro.serving.transport`) — membership churn from crashes,
connection losses and re-admissions all arrive as the same
``add_worker`` / ``remove_worker`` calls.  The policy has two layers:

* **Least outstanding requests** — a request goes to the eligible worker
  with the fewest requests currently dispatched-but-unanswered.  This is
  the classic load-balancing improvement over round-robin for workloads
  with variable batch latency: a worker stuck on a big micro-batch simply
  stops winning ties until it drains.
* **Per-model consistent tie-breaking (rendezvous hashing)** — ties are
  broken by the highest-random-weight hash of ``(model, worker)``, so each
  model has a stable preference order over workers.  At low load one
  model's traffic keeps landing on the same workers (warm plans, warm
  caches); when workers join or die, only the affected slots reshuffle.

Admission control is a bounded outstanding window per worker
(``max_outstanding``): when every eligible worker is at its bound the
router *sheds* instead of queueing unboundedly, and reports a suggested
retry-after so clients can back off (the cluster surfaces this as
:class:`~repro.serving.cluster.ClusterOverloadError`).

Examples
--------
>>> router = LeastOutstandingRouter(max_outstanding=2)
>>> router.add_worker("w0"); router.add_worker("w1")
>>> first = router.acquire("MicroCNN")
>>> second = router.acquire("MicroCNN")
>>> {first, second} == {"w0", "w1"}  # least-outstanding spreads the pair
True
>>> router.acquire("MicroCNN") in ("w0", "w1")
True
>>> router.acquire("MicroCNN") in ("w0", "w1")
True
>>> router.acquire("MicroCNN") is None  # both at the bound: shed
True
>>> router.release(first)
>>> router.acquire("MicroCNN") == first
True
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["LeastOutstandingRouter", "RouterStats"]


def rendezvous_score(model: str, worker: str) -> int:
    """Stable highest-random-weight score for a ``(model, worker)`` pair."""
    digest = hashlib.blake2b(
        f"{model}\x00{worker}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class RouterStats:
    """Counters over the router's lifetime."""

    dispatched: int
    completed: int
    shed: int
    workers: int

    @property
    def outstanding(self) -> int:
        return self.dispatched - self.completed


class LeastOutstandingRouter:
    """Pick workers by least-outstanding with consistent tie-breaking.

    Parameters
    ----------
    max_outstanding:
        Admission-control bound per worker: :meth:`acquire` returns ``None``
        (shed) when every eligible worker already has this many requests in
        flight.  This bounds every per-worker queue — the cluster's
        backpressure comes from here, not from unbounded OS pipes.
    """

    def __init__(self, max_outstanding: int = 64) -> None:
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be at least 1")
        self.max_outstanding = int(max_outstanding)
        self._lock = threading.Lock()
        self._outstanding: Dict[str, int] = {}
        self._dispatched = 0
        self._completed = 0
        self._shed = 0

    # ------------------------------------------------------------- membership
    def add_worker(self, worker: str) -> None:
        """Register a worker (respawns re-register under the same id)."""
        with self._lock:
            self._outstanding.setdefault(worker, 0)

    def remove_worker(self, worker: str) -> int:
        """Drop a worker; returns the outstanding count it died with.

        The dropped slots will never see a ``release`` (their responses
        died with the worker), so they are credited to the completed
        counter here — otherwise every crashed in-flight request would
        inflate ``RouterStats.outstanding`` forever, since its re-dispatch
        counts as a fresh acquire.
        """
        with self._lock:
            count = self._outstanding.pop(worker, 0)
            self._completed += count
            return count

    def workers(self) -> List[str]:
        with self._lock:
            return sorted(self._outstanding)

    def outstanding(self, worker: str) -> int:
        with self._lock:
            return self._outstanding.get(worker, 0)

    # ------------------------------------------------------------- routing
    def acquire(self, model: str, force: bool = False,
                record_shed: bool = True) -> Optional[str]:
        """Reserve a dispatch slot; returns the worker id or ``None`` (shed).

        The caller owns the returned slot and must pair it with
        :meth:`release` (request answered) or :meth:`remove_worker`
        (worker died; in-flight slots die with it).  ``force=True`` ignores
        the admission bound — used when re-dispatching work that was
        already admitted once (crashed-worker requeue must not shed).
        ``record_shed=False`` keeps a ``None`` return out of the shed
        counter — a backpressured caller polling for a free slot is
        *waiting*, not shedding, and must not inflate the statistic.
        """
        with self._lock:
            best: Optional[str] = None
            best_key = None
            for worker, count in self._outstanding.items():
                if count >= self.max_outstanding and not force:
                    continue
                key = (count, -rendezvous_score(model, worker))
                if best_key is None or key < best_key:
                    best, best_key = worker, key
            if best is None:
                if record_shed:
                    self._shed += 1
                return None
            self._outstanding[best] += 1
            self._dispatched += 1
            return best

    def record_shed(self) -> None:
        """Count one client-visible shed (used with ``record_shed=False``)."""
        with self._lock:
            self._shed += 1

    def release(self, worker: str) -> None:
        """Return one slot on ``worker`` (no-op if it was removed).

        A removed worker's slots were already credited to the completed
        counter by :meth:`remove_worker`; counting its late responses again
        would overstate completions.
        """
        with self._lock:
            count = self._outstanding.get(worker)
            if count is None:
                return
            self._completed += 1
            if count > 0:
                self._outstanding[worker] = count - 1

    def retry_after_s(self, batch_wall_ms: float = 2.0) -> float:
        """Suggested client back-off when shedding.

        A saturated cluster drains roughly one batch per worker per batch
        wall time; half that horizon is a reasonable first retry.
        """
        with self._lock:
            workers = max(1, len(self._outstanding))
        return max(0.001, (batch_wall_ms / 1000.0) * self.max_outstanding
                   / (2.0 * workers))

    # ------------------------------------------------------------- stats
    def stats(self) -> RouterStats:
        with self._lock:
            return RouterStats(
                dispatched=self._dispatched,
                completed=self._completed,
                shed=self._shed,
                workers=len(self._outstanding),
            )
