"""Dynamic micro-batching scheduler.

Per-request traffic is the worst case for the batched engine: every call
pays the full per-invocation overhead that ``run_batch`` exists to
amortize.  :class:`BatchingScheduler` sits between the two — requests are
queued as they arrive and a worker thread flushes them to an executor in
micro-batches under a classic dual-trigger policy:

* **size** — a batch flushes as soon as ``max_batch_size`` requests are
  pending (full batches never wait);
* **timeout** — a partial batch flushes once its oldest request has waited
  ``max_wait_ms`` (latency is bounded even at low offered load);
* **flush** — :meth:`flush` forces everything pending out immediately;
* **drain** — :meth:`close` flushes the remaining queue before shutdown,
  so no accepted request is ever dropped.

The scheduler is payload-agnostic: the executor receives the list of queued
payloads and returns one result per payload.  Batching must not change
results — the inference service's executor feeds the whole micro-batch
through ``PhoneBitEngine.run_batch``, whose outputs are bit-identical to
per-request execution.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.serving.metrics import LatencyTracker

#: Flush triggers recorded per batch.
TRIGGERS = ("size", "timeout", "flush", "drain")

#: How many recent :class:`BatchRecord` entries a scheduler retains.
RECENT_BATCHES = 4_096


@dataclass
class _PendingRequest:
    payload: object
    future: Future
    enqueued_at: float


@dataclass(frozen=True)
class BatchRecord:
    """Accounting for one flushed micro-batch."""

    size: int
    queue_depth: int  #: pending requests at the moment the batch was cut
    trigger: str
    wall_ms: float
    failed: bool = False


@dataclass(frozen=True)
class SchedulerStats:
    """Aggregate view over every batch a scheduler has flushed.

    Counters (``batch_count``, ``trigger_counts``, sizes) are exact over
    the scheduler's whole lifetime; ``batches`` holds only the most recent
    records so long-lived services stay memory-bounded.
    """

    submitted: int
    completed: int
    failed: int
    batch_count: int = 0
    batched_requests: int = 0
    trigger_counts: Dict[str, int] = field(
        default_factory=lambda: {trigger: 0 for trigger in TRIGGERS}
    )
    batches: List[BatchRecord] = field(default_factory=list)
    max_queue_depth: int = 0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_count:
            return 0.0
        return self.batched_requests / self.batch_count


class BatchingScheduler:
    """Queue requests and flush dynamic micro-batches to an executor.

    Parameters
    ----------
    execute:
        Callable receiving the list of payloads of one micro-batch and
        returning one result per payload (in order).  Runs on the worker
        thread; an exception fails every request in the batch.
    max_batch_size:
        Flush as soon as this many requests are pending.
    max_wait_ms:
        Flush a partial batch once its oldest request has waited this long.
        ``0`` disables batching-by-wait: whatever is queued when the worker
        wakes is flushed immediately.
    clock:
        Injectable monotonic clock (tests use a fake to make the timeout
        policy deterministic).

    Examples
    --------
    Four queued requests and ``max_batch_size=4`` flush as one batch:

    >>> with BatchingScheduler(lambda xs: [x * 2 for x in xs],
    ...                        max_batch_size=4, max_wait_ms=60_000.0) as s:
    ...     futures = [s.submit(i) for i in range(4)]
    ...     results = [f.result(timeout=30) for f in futures]
    >>> results
    [0, 2, 4, 6]
    >>> s.stats().batch_count
    1
    """

    def __init__(
        self,
        execute: Callable[[Sequence[object]], Sequence[object]],
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        name: str = "scheduler",
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms cannot be negative")
        self._execute = execute
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.name = name
        self._clock = clock or time.monotonic

        self._cond = threading.Condition()
        self._pending: Deque[_PendingRequest] = deque()
        self._closed = False
        self._draining = False
        self._flush_requested = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._max_queue_depth = 0
        self._batch_count = 0
        self._batched_requests = 0
        self._trigger_counts = {trigger: 0 for trigger in TRIGGERS}
        self._records: Deque[BatchRecord] = deque(maxlen=RECENT_BATCHES)
        self.latencies = LatencyTracker()

        self._worker = threading.Thread(
            target=self._run, name=f"{name}-worker", daemon=True
        )
        self._worker.start()

    # ----------------------------------------------------------- submission
    def submit(self, payload: object) -> Future:
        """Enqueue one request; the future resolves to the executor's result."""
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            self._pending.append(_PendingRequest(payload, future, self._clock()))
            self._submitted += 1
            self._max_queue_depth = max(self._max_queue_depth, len(self._pending))
            self._cond.notify_all()
        return future

    def submit_many(self, payloads: Sequence[object]) -> List[Future]:
        """Enqueue several requests (one notify, preserving order)."""
        futures: List[Future] = []
        with self._cond:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            now = self._clock()
            for payload in payloads:
                future: Future = Future()
                self._pending.append(_PendingRequest(payload, future, now))
                futures.append(future)
            self._submitted += len(futures)
            self._max_queue_depth = max(self._max_queue_depth, len(self._pending))
            self._cond.notify_all()
        return futures

    def flush(self) -> None:
        """Ask the worker to flush everything currently pending."""
        with self._cond:
            self._flush_requested = True
            self._cond.notify_all()

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests and shut the worker down.

        With ``drain=True`` (the default) every pending request is executed
        before the worker exits; with ``drain=False`` pending requests are
        cancelled.
        """
        with self._cond:
            if not self._closed:
                self._closed = True
                self._draining = drain
                if not drain:
                    while self._pending:
                        request = self._pending.popleft()
                        request.future.cancel()
            self._cond.notify_all()
        if self._worker is not threading.current_thread():
            self._worker.join()
        # The worker only drains what it can reach: if it died abnormally
        # (see _run) — or its death raced the close — requests may still be
        # queued.  They must resolve with an error, never hang a client.
        self._fail_pending(RuntimeError(f"{self.name} worker thread died"))

    def _fail_pending(self, error: BaseException) -> None:
        """Resolve every still-queued request with ``error``."""
        with self._cond:
            pending, self._pending = list(self._pending), deque()
            self._failed += len(pending)
        for request in pending:
            if request.future.set_running_or_notify_cancel():
                try:
                    request.future.set_exception(error)
                except Exception:  # pragma: no cover - defensive
                    pass

    def __enter__(self) -> "BatchingScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- inspection
    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def stats(self) -> SchedulerStats:
        with self._cond:
            return SchedulerStats(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                batch_count=self._batch_count,
                batched_requests=self._batched_requests,
                trigger_counts=dict(self._trigger_counts),
                batches=list(self._records),
                max_queue_depth=self._max_queue_depth,
            )

    # ----------------------------------------------------------- worker loop
    def _cut_batch(self) -> tuple:
        """Wait until a flush trigger fires; cut and return the next batch.

        Returns ``(batch, trigger, depth)``; ``batch`` is None when the
        scheduler is closed and the queue is exhausted.
        """
        with self._cond:
            while True:
                if self._pending:
                    oldest_wait = self._clock() - self._pending[0].enqueued_at
                    if len(self._pending) >= self.max_batch_size:
                        trigger = "size"
                    elif self._draining:
                        trigger = "drain"
                    elif self._flush_requested:
                        trigger = "flush"
                    elif self.max_wait_s == 0 or oldest_wait >= self.max_wait_s:
                        trigger = "timeout"
                    else:
                        self._cond.wait(self.max_wait_s - oldest_wait)
                        continue
                    depth = len(self._pending)
                    count = min(self.max_batch_size, depth)
                    batch = []
                    for _ in range(count):
                        request = self._pending.popleft()
                        # Claim the future before executing.  A client may
                        # have cancelled while the request was queued; such
                        # requests are dropped here, and claiming makes
                        # later cancel() calls no-ops so the result/exception
                        # hand-off below cannot race a client-side cancel.
                        if request.future.set_running_or_notify_cancel():
                            batch.append(request)
                    if not self._pending:
                        self._flush_requested = False
                    if not batch:
                        continue  # every popped request was already cancelled
                    return batch, trigger, depth
                if self._closed:
                    return None, "", 0
                self._flush_requested = False
                self._cond.wait()

    def _run(self) -> None:
        try:
            while True:
                batch, trigger, depth = self._cut_batch()
                if batch is None:
                    return
                self._run_batch(batch, trigger, depth)
        except BaseException as exc:  # noqa: BLE001 - worker must not hang clients
            # Executor exceptions are forwarded per batch by _run_batch; only
            # infrastructure failures land here (e.g. a poisoned clock).  A
            # dead worker can never cut another batch, so every queued — and
            # every future — request must fail instead of waiting forever.
            with self._cond:
                self._closed = True
                self._cond.notify_all()
            self._fail_pending(
                RuntimeError(f"{self.name} worker thread died: {exc!r}")
            )

    def _run_batch(self, batch: List[_PendingRequest], trigger: str, depth: int) -> None:
        payloads = [request.payload for request in batch]
        t0 = time.perf_counter()
        error: Optional[BaseException] = None
        results: Sequence[object] = ()
        now = 0.0
        try:
            results = self._execute(payloads)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"executor returned {len(results)} results for "
                    f"{len(batch)} requests"
                )
            # Inside the guard: the batch's futures are already claimed, so
            # anything raising past this point — even the injectable clock —
            # must fail the batch, not strand resolved-never futures.
            now = self._clock()
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            error = exc
        wall_ms = (time.perf_counter() - t0) * 1000.0

        # The futures were claimed in _cut_batch, so set_result/set_exception
        # cannot race a client cancel; the guard below is a last line of
        # defence keeping the worker alive should a future somehow already
        # be resolved — one wedged future must never kill the loop.
        if error is not None:
            for request in batch:
                try:
                    request.future.set_exception(error)
                except Exception:  # pragma: no cover - defensive
                    pass
        else:
            for request, result in zip(batch, results):
                self.latencies.record(max(0.0, now - request.enqueued_at))
                try:
                    request.future.set_result(result)
                except Exception:  # pragma: no cover - defensive
                    pass

        with self._cond:
            if error is not None:
                self._failed += len(batch)
            else:
                self._completed += len(batch)
            self._batch_count += 1
            self._batched_requests += len(batch)
            self._trigger_counts[trigger] += 1
            self._records.append(
                BatchRecord(
                    size=len(batch),
                    queue_depth=depth,
                    trigger=trigger,
                    wall_ms=wall_ms,
                    failed=error is not None,
                )
            )
