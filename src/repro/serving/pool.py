"""Warmed model instances for the inference service.

A :class:`ModelPool` owns the :class:`~repro.core.network.Network` objects
the service executes.  Networks are built lazily from the zoo's serving
registry on first request (or registered explicitly, e.g. a network loaded
from a ``.pbit`` file) and warmed immediately: every lazy packed-weight
cache is populated *and* the fused execution plan is compiled at load time
(``Network.warm`` → :func:`repro.core.plan.get_plan`), so the first user
request pays neither packing nor plan-compilation cost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import plan as plan_mod
from repro.core.network import Network
from repro.models.zoo import SERVING_MODELS, build_phonebit_network, get_serving_config


@dataclass(frozen=True)
class PoolEntry:
    """A loaded network plus its load-time accounting."""

    network: Network
    build_ms: float
    warm_ms: float
    #: Fused steps in the network's compiled execution plan (0 when the
    #: network was registered unwarmed and no plan has been compiled yet).
    fused_steps: int = 0
    #: Resolved kernel backend of the warmed plan ("numpy" until warmed).
    backend: str = "numpy"


class ModelPool:
    """Thread-safe pool of warmed networks keyed by serving-model name.

    ``backend`` is the kernel-backend spec applied while warming
    (:data:`repro.core.backends.BACKEND_CHOICES`; ``None`` defers to
    ``REPRO_BACKEND`` / ``auto``) — compiled kernels are built, verified
    bit-exact per plan step and attached at load time, so no request pays
    compile or verification cost.

    A ``strict`` pool serves **only** explicitly registered networks and
    never builds from the zoo: cluster workers use this so a routing bug
    (a request for a model outside the worker's pinned attach set) fails
    loudly instead of silently serving a freshly built local copy whose
    weights are not the published artifact's.
    """

    def __init__(self, rng: int = 0, word_size: int = 64,
                 backend: Optional[str] = None, strict: bool = False) -> None:
        self.rng = rng
        self.word_size = word_size
        self.backend = backend
        self.strict = strict
        self._lock = threading.RLock()
        self._entries: Dict[str, PoolEntry] = {}
        #: Per-key events marking builds in flight, so concurrent first
        #: requests for one model build once while the pool lock stays free
        #: (a multi-second VGG16 build must not stall lookups of hot models).
        self._building: Dict[str, threading.Event] = {}

    # ------------------------------------------------------------- lookup
    def canonical_name(self, name: str) -> str:
        """Canonical pool key for ``name``.

        Zoo models resolve case-insensitively to their registry spelling;
        explicitly registered names resolve case-insensitively to their
        registered spelling; unknown names pass through unchanged.  The
        service keys its per-model schedulers, metrics and response-cache
        namespace on this, so ``"microcnn"`` and ``"MicroCNN"`` are one
        model, not two.
        """
        with self._lock:
            for key in self._entries:
                if key.lower() == name.lower():
                    return key
        for key in SERVING_MODELS:
            if key.lower() == name.lower():
                return key
        return name

    def available(self) -> List[str]:
        """Names servable by this pool (registered + buildable from the
        zoo; a strict pool serves only what is registered)."""
        with self._lock:
            names = set(self._entries)
        if not self.strict:
            names.update(SERVING_MODELS)
        return sorted(names)

    def loaded(self) -> List[str]:
        """Names of networks already built and warmed."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return self.canonical_name(name) in self.available()

    # ------------------------------------------------------------- loading
    def register(self, network: Network, name: Optional[str] = None,
                 warm: bool = True) -> Network:
        """Adopt an externally built network (warming it by default)."""
        key = name or network.name
        warm_ms = 0.0
        fused_steps = 0
        backend = "numpy"
        if warm:
            t0 = time.perf_counter()
            network.warm(self.backend)
            warm_ms = (time.perf_counter() - t0) * 1000.0
            plan = plan_mod.get_plan(network)
            fused_steps = plan.fused_step_count
            backend = plan.backend_spec
        with self._lock:
            self._entries[key] = PoolEntry(
                network, build_ms=0.0, warm_ms=warm_ms,
                fused_steps=fused_steps, backend=backend,
            )
        return network

    def get(self, name: str) -> Network:
        """Return the warmed network for ``name``, building it on first use.

        Concurrent first requests for the same model build one copy (the
        losers wait on the builder), and the build itself runs *outside*
        the pool lock so lookups of already-loaded models never stall
        behind a slow build.
        """
        key = self.canonical_name(name)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    return entry.network
                if self.strict:
                    raise KeyError(
                        f"model {name!r} is not attached to this strict "
                        f"pool; attached: {sorted(self._entries)}"
                    )
                build_done = self._building.get(key)
                if build_done is None:
                    self._building[key] = threading.Event()
                    break  # we are the builder
            build_done.wait()
            # Loop: either the builder succeeded (entry exists now) or it
            # failed, in which case we retry the build ourselves and
            # surface its error.
        try:
            t0 = time.perf_counter()
            config = get_serving_config(key)
            network = build_phonebit_network(
                config, rng=self.rng, word_size=self.word_size
            )
            build_ms = (time.perf_counter() - t0) * 1000.0
            t0 = time.perf_counter()
            network.warm(self.backend)
            warm_ms = (time.perf_counter() - t0) * 1000.0
            plan = plan_mod.get_plan(network)
            with self._lock:
                self._entries[key] = PoolEntry(
                    network, build_ms=build_ms, warm_ms=warm_ms,
                    fused_steps=plan.fused_step_count,
                    backend=plan.backend_spec,
                )
            return network
        finally:
            with self._lock:
                event = self._building.pop(key, None)
            if event is not None:
                event.set()

    def entry(self, name: str) -> PoolEntry:
        """Pool entry (network + load accounting) for a loaded model."""
        key = self.canonical_name(name)
        with self._lock:
            if key not in self._entries:
                raise KeyError(f"model {name!r} is not loaded; call get() first")
            return self._entries[key]
