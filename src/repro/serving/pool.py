"""Warmed model instances for the inference service.

A :class:`ModelPool` owns the :class:`~repro.core.network.Network` objects
the service executes.  Networks are built lazily from the zoo's serving
registry on first request (or registered explicitly, e.g. a network loaded
from a ``.pbit`` file) and warmed immediately: every lazy packed-weight
cache is populated *and* the fused execution plan is compiled at load time
(``Network.warm`` → :func:`repro.core.plan.get_plan`), so the first user
request pays neither packing nor plan-compilation cost.

Entries are keyed by **(model name, artifact digest)**: a model may hold
several content-addressed *versions* simultaneously, of which exactly one
is *active* (served when no digest is requested).  This is what makes a
live rollout an atomic pointer flip — :meth:`ModelPool.set_active` swaps
which warmed network answers for the name, the outgoing version stays
warm and resident for instant rollback, and a digest-tagged request can
always reach the exact version it was routed for.  Callers that never
version (the single-process service, tests) use the default digest ``""``
and see the historical name-keyed behaviour unchanged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import plan as plan_mod
from repro.core.network import Network
from repro.models.zoo import SERVING_MODELS, build_phonebit_network, get_serving_config


@dataclass(frozen=True)
class PoolEntry:
    """A loaded network plus its load-time accounting."""

    network: Network
    build_ms: float
    warm_ms: float
    #: Fused steps in the network's compiled execution plan (0 when the
    #: network was registered unwarmed and no plan has been compiled yet).
    fused_steps: int = 0
    #: Resolved kernel backend of the warmed plan ("numpy" until warmed).
    backend: str = "numpy"
    #: Artifact digest this entry was registered under ("" when unversioned).
    digest: str = ""


class ModelPool:
    """Thread-safe pool of warmed networks keyed by (model name, digest).

    ``backend`` is the kernel-backend spec applied while warming
    (:data:`repro.core.backends.BACKEND_CHOICES`; ``None`` defers to
    ``REPRO_BACKEND`` / ``auto``) — compiled kernels are built, verified
    bit-exact per plan step and attached at load time, so no request pays
    compile or verification cost.

    A ``strict`` pool serves **only** explicitly registered networks and
    never builds from the zoo: cluster workers use this so a routing bug
    (a request for a model outside the worker's pinned attach set) fails
    loudly instead of silently serving a freshly built local copy whose
    weights are not the published artifact's.
    """

    def __init__(self, rng: int = 0, word_size: int = 64,
                 backend: Optional[str] = None, strict: bool = False) -> None:
        self.rng = rng
        self.word_size = word_size
        self.backend = backend
        self.strict = strict
        self._lock = threading.RLock()
        #: name -> digest -> entry; every resident version of every model.
        self._entries: Dict[str, Dict[str, PoolEntry]] = {}
        #: name -> digest of the version served when no digest is asked for.
        self._active: Dict[str, str] = {}
        #: Per-key events marking builds in flight, so concurrent first
        #: requests for one model build once while the pool lock stays free
        #: (a multi-second VGG16 build must not stall lookups of hot models).
        self._building: Dict[str, threading.Event] = {}

    # ------------------------------------------------------------- lookup
    def canonical_name(self, name: str) -> str:
        """Canonical pool key for ``name``.

        Zoo models resolve case-insensitively to their registry spelling;
        explicitly registered names resolve case-insensitively to their
        registered spelling; unknown names pass through unchanged.  The
        service keys its per-model schedulers, metrics and response-cache
        namespace on this, so ``"microcnn"`` and ``"MicroCNN"`` are one
        model, not two.
        """
        with self._lock:
            for key in self._entries:
                if key.lower() == name.lower():
                    return key
        for key in SERVING_MODELS:
            if key.lower() == name.lower():
                return key
        return name

    def available(self) -> List[str]:
        """Names servable by this pool (registered + buildable from the
        zoo; a strict pool serves only what is registered)."""
        with self._lock:
            names = set(self._entries)
        if not self.strict:
            names.update(SERVING_MODELS)
        return sorted(names)

    def loaded(self) -> List[str]:
        """Names of networks already built and warmed."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return self.canonical_name(name) in self.available()

    def digests(self, name: str) -> Tuple[str, ...]:
        """Resident version digests for ``name`` (sorted)."""
        key = self.canonical_name(name)
        with self._lock:
            return tuple(sorted(self._entries.get(key, {})))

    def active_digest(self, name: str) -> str:
        """Digest of the version currently served for untagged requests."""
        key = self.canonical_name(name)
        with self._lock:
            if key not in self._active:
                raise KeyError(f"model {name!r} is not loaded")
            return self._active[key]

    # ------------------------------------------------------------- loading
    def register(self, network: Network, name: Optional[str] = None,
                 warm: bool = True, digest: str = "",
                 activate: bool = True) -> Network:
        """Adopt an externally built network (warming it by default).

        ``digest`` versions the entry; ``activate=False`` stages it without
        changing which version untagged requests are served (the fetch-ahead
        half of a rollout — the swap itself is :meth:`set_active`).
        """
        key = name or network.name
        warm_ms = 0.0
        fused_steps = 0
        backend = "numpy"
        if warm:
            t0 = time.perf_counter()
            network.warm(self.backend)
            warm_ms = (time.perf_counter() - t0) * 1000.0
            plan = plan_mod.get_plan(network)
            fused_steps = plan.fused_step_count
            backend = plan.backend_spec
        with self._lock:
            versions = self._entries.setdefault(key, {})
            versions[digest] = PoolEntry(
                network, build_ms=0.0, warm_ms=warm_ms,
                fused_steps=fused_steps, backend=backend, digest=digest,
            )
            if activate or key not in self._active:
                self._active[key] = digest
        return network

    def set_active(self, name: str, digest: str) -> Network:
        """Atomically flip which resident version serves untagged requests.

        This is the worker-local commit of a rollout: one pointer swap
        under the pool lock — requests already running keep their network
        reference, requests resolved after the swap get the new version,
        and no request can observe a mix.
        """
        key = self.canonical_name(name)
        with self._lock:
            versions = self._entries.get(key, {})
            if digest not in versions:
                raise KeyError(
                    f"model {name!r} has no resident version "
                    f"{digest[:16] or '<unversioned>'}...; resident: "
                    f"{sorted(versions)}")
            self._active[key] = digest
            return versions[digest].network

    def remove(self, name: str, digest: str) -> PoolEntry:
        """Drop one resident version (never the active one).

        Returns the removed entry so the caller can release whatever
        backing storage (a shared-memory view) the network mapped.
        """
        key = self.canonical_name(name)
        with self._lock:
            versions = self._entries.get(key, {})
            if digest not in versions:
                raise KeyError(
                    f"model {name!r} has no resident version "
                    f"{digest[:16] or '<unversioned>'}...")
            if self._active.get(key) == digest:
                raise ValueError(
                    f"version {digest[:16] or '<unversioned>'}... is the "
                    f"active version of {name!r}; activate another version "
                    f"before removing it")
            entry = versions.pop(digest)
            if not versions:
                del self._entries[key]
                self._active.pop(key, None)
            return entry

    def evict(self, name: str) -> List[PoolEntry]:
        """Drop *every* resident version of ``name`` (pin revocation).

        Unlike :meth:`remove` this may take out the active version too —
        the caller is withdrawing the whole model from this pool, not
        swapping versions.  Returns the removed entries so the backing
        storage can be released; an unknown name returns ``[]``.
        """
        key = self.canonical_name(name)
        with self._lock:
            versions = self._entries.pop(key, None)
            self._active.pop(key, None)
            return list(versions.values()) if versions else []

    def get(self, name: str, digest: Optional[str] = None) -> Network:
        """Return the warmed network for ``name``, building it on first use.

        ``digest`` selects one resident version explicitly (a digest-tagged
        rollout request); ``None`` serves the active version.  Concurrent
        first requests for the same model build one copy (the losers wait
        on the builder), and the build itself runs *outside* the pool lock
        so lookups of already-loaded models never stall behind a slow
        build.
        """
        key = self.canonical_name(name)
        while True:
            with self._lock:
                versions = self._entries.get(key)
                if versions is not None:
                    wanted = self._active[key] if digest is None else digest
                    entry = versions.get(wanted)
                    if entry is not None:
                        return entry.network
                    if digest is not None:
                        raise KeyError(
                            f"model {name!r} has no resident version "
                            f"{digest[:16] or '<unversioned>'}...; resident: "
                            f"{sorted(versions)}")
                if self.strict:
                    raise KeyError(
                        f"model {name!r} is not attached to this strict "
                        f"pool; attached: {sorted(self._entries)}"
                    )
                if digest is not None and digest != "":
                    raise KeyError(
                        f"model {name!r} has no resident version "
                        f"{digest[:16]}... (zoo builds are unversioned)")
                build_done = self._building.get(key)
                if build_done is None:
                    self._building[key] = threading.Event()
                    break  # we are the builder
            build_done.wait()
            # Loop: either the builder succeeded (entry exists now) or it
            # failed, in which case we retry the build ourselves and
            # surface its error.
        try:
            t0 = time.perf_counter()
            config = get_serving_config(key)
            network = build_phonebit_network(
                config, rng=self.rng, word_size=self.word_size
            )
            build_ms = (time.perf_counter() - t0) * 1000.0
            t0 = time.perf_counter()
            network.warm(self.backend)
            warm_ms = (time.perf_counter() - t0) * 1000.0
            plan = plan_mod.get_plan(network)
            with self._lock:
                self._entries.setdefault(key, {})[""] = PoolEntry(
                    network, build_ms=build_ms, warm_ms=warm_ms,
                    fused_steps=plan.fused_step_count,
                    backend=plan.backend_spec,
                )
                self._active.setdefault(key, "")
            return network
        finally:
            with self._lock:
                event = self._building.pop(key, None)
            if event is not None:
                event.set()

    def entry(self, name: str, digest: Optional[str] = None) -> PoolEntry:
        """Pool entry (network + load accounting) for a loaded model."""
        key = self.canonical_name(name)
        with self._lock:
            versions = self._entries.get(key)
            if not versions:
                raise KeyError(f"model {name!r} is not loaded; call get() first")
            wanted = self._active[key] if digest is None else digest
            if wanted not in versions:
                raise KeyError(
                    f"model {name!r} has no resident version "
                    f"{wanted[:16] or '<unversioned>'}...")
            return versions[wanted]
