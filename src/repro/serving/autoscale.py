"""Elastic worker scaling: grow on sustained shedding, shrink on idleness.

The router already exposes every signal an autoscaler needs — lifetime
dispatch/shed counters (:class:`~repro.serving.router.RouterStats`),
per-worker outstanding windows, heartbeat-supervised membership — and the
cluster already knows how to spawn and retire workers.  This module closes
the loop with a deliberately *pure* decision core:

* :class:`Autoscaler` consumes :class:`AutoscaleSignals` snapshots (taken
  by the cluster's control thread each tick) and answers ``"grow"`` /
  ``"shrink"`` / ``"hold"``.  It owns no threads, reads no clocks it was
  not given, and touches no cluster state — so every policy edge
  (consecutive-tick debounce, cooldown, respawn budget, min/max bounds)
  is unit-testable with a fake clock (``tests/test_autoscale.py``).
* :class:`AutoscaleConfig` is the operator surface, documented knob by
  knob in ``docs/deployment.md``.

Policy
------
**Grow** when shedding is *sustained*: at least ``grow_consecutive``
consecutive ticks each observed new sheds (one overloaded burst must not
buy a worker), the fleet is below ``max_workers``, the ``grow_budget`` has
spawns left, and ``cooldown_s`` has elapsed since the last scale action.
Ticks with spawns still pending hold instead — capacity that is already
coming must land before it can be judged insufficient.

**Shrink** when idleness is *sustained*: ``shrink_consecutive``
consecutive ticks each saw zero new sheds and window utilization
(``outstanding / (workers × max_outstanding)``) at or below
``idle_utilization``, the fleet is above ``min_workers``, and the
cooldown has elapsed.  Growing resets the idle streak and vice versa.

The cooldown applies after *either* action, so the loop cannot oscillate
faster than the fleet can actually warm a worker or drain one.

Examples
--------
>>> clock = FakeClock()
>>> scaler = Autoscaler(AutoscaleConfig(min_workers=1, max_workers=4,
...                                     grow_consecutive=2, cooldown_s=5.0),
...                     clock=clock)
>>> def tick(shed):
...     clock.advance(1.0)
...     return scaler.observe(AutoscaleSignals(workers=1, pending=0,
...                                            dispatched=shed, shed=shed,
...                                            outstanding=8, window=8))
>>> tick(0)   # first tick only arms the lifetime-counter baseline
'hold'
>>> tick(4)   # one shedding tick is noise, not a trend
'hold'
>>> tick(9)   # second consecutive shedding tick: grow
'grow'
>>> tick(14)  # streak was reset by the grow (and the cooldown holds too)
'hold'
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = [
    "Autoscaler",
    "AutoscaleConfig",
    "AutoscaleSignals",
    "FakeClock",
    "ScaleEvent",
]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Operator knobs for the elastic control loop.

    Parameters
    ----------
    min_workers / max_workers:
        Hard fleet-size bounds; the loop never decides past them.
    grow_consecutive:
        Consecutive shedding ticks required before growing (debounce —
        one bursty tick is noise, N in a row is a trend).
    shrink_consecutive:
        Consecutive idle ticks required before shrinking.  Idle means no
        new sheds *and* utilization at or below ``idle_utilization``.
    idle_utilization:
        Fraction of the fleet-wide admission window
        (``workers × max_outstanding``) under which a tick counts as
        idle.
    cooldown_s:
        Minimum wall-clock between scale actions (grow or shrink).
    grow_budget:
        Total grow actions this autoscaler may ever take (``None`` =
        unbounded).  This is the *scale-up* budget, separate from the
        cluster's crash-respawn budget — a traffic spike must not be able
        to spend the allowance reserved for crash recovery, or vice
        versa.
    grow_step / shrink_step:
        Workers added / retired per action.
    interval_s:
        Control-loop tick period (used by the cluster's thread, not by
        the pure core).
    """

    min_workers: int = 1
    max_workers: int = 8
    grow_consecutive: int = 2
    shrink_consecutive: int = 6
    idle_utilization: float = 0.1
    cooldown_s: float = 2.0
    grow_budget: Optional[int] = None
    grow_step: int = 1
    shrink_step: int = 1
    interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.grow_consecutive < 1 or self.shrink_consecutive < 1:
            raise ValueError("consecutive-tick thresholds must be >= 1")
        if not (0.0 <= self.idle_utilization <= 1.0):
            raise ValueError("idle_utilization must be within [0, 1]")
        if self.cooldown_s < 0 or self.interval_s <= 0:
            raise ValueError("cooldown_s must be >= 0 and interval_s > 0")
        if self.grow_step < 1 or self.shrink_step < 1:
            raise ValueError("grow_step and shrink_step must be >= 1")
        if self.grow_budget is not None and self.grow_budget < 0:
            raise ValueError("grow_budget must be >= 0 when set")


@dataclass(frozen=True)
class AutoscaleSignals:
    """One control-tick snapshot of the router's view of the fleet.

    ``dispatched`` and ``shed`` are *lifetime* counters (straight from
    :class:`~repro.serving.router.RouterStats`); the autoscaler diffs
    them against the previous tick itself.  ``pending`` counts workers
    that are spawned/registering but not ready — capacity in flight.
    ``window`` is the fleet-wide admission bound
    (``workers × max_outstanding``).
    """

    workers: int
    pending: int
    dispatched: int
    shed: int
    outstanding: int
    window: int

    @property
    def utilization(self) -> float:
        """Outstanding work as a fraction of the admission window."""
        if self.window <= 0:
            return 1.0 if self.outstanding > 0 else 0.0
        return self.outstanding / self.window


@dataclass(frozen=True)
class ScaleEvent:
    """One recorded autoscaler action (exposed for benchmarks/reports)."""

    at_s: float
    action: str  #: ``"grow"`` or ``"shrink"``
    workers_before: int
    workers_target: int
    shed_delta: int
    utilization: float


class FakeClock:
    """Deterministic clock for autoscaler tests and doctests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Autoscaler:
    """Pure grow/shrink decision core over router signal snapshots.

    Feed one :class:`AutoscaleSignals` per control tick to
    :meth:`observe`; it returns ``"grow"``, ``"shrink"`` or ``"hold"``.
    The caller (the cluster's control thread) owns the actual spawning
    and retiring — and reports grows that could not be executed back via
    :meth:`refund_grow` so the budget reflects workers, not attempts.
    """

    def __init__(self, config: AutoscaleConfig,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._last_dispatched: Optional[int] = None
        self._last_shed: Optional[int] = None
        self._shed_streak = 0
        self._idle_streak = 0
        self._last_action_at: Optional[float] = None
        self._grows_spent = 0
        self.events: List[ScaleEvent] = []

    # ------------------------------------------------------------- state
    @property
    def grows_remaining(self) -> Optional[int]:
        """Grow actions left in the budget (``None`` = unbounded)."""
        if self.config.grow_budget is None:
            return None
        return max(0, self.config.grow_budget - self._grows_spent)

    def refund_grow(self) -> None:
        """Return one spent grow to the budget (spawn failed to launch)."""
        self._grows_spent = max(0, self._grows_spent - 1)

    def _cooldown_elapsed(self, now: float) -> bool:
        return (self._last_action_at is None
                or now - self._last_action_at >= self.config.cooldown_s)

    # ------------------------------------------------------------- ticks
    def observe(self, signals: AutoscaleSignals) -> str:
        """Consume one tick's snapshot; returns ``grow``/``shrink``/``hold``.

        The first tick only arms the delta baseline (lifetime counters
        have no delta yet) and always holds.
        """
        now = self._clock()
        config = self.config
        if self._last_dispatched is None:
            self._last_dispatched = signals.dispatched
            self._last_shed = signals.shed
            return "hold"
        shed_delta = max(0, signals.shed - self._last_shed)
        self._last_dispatched = signals.dispatched
        self._last_shed = signals.shed

        idle = (shed_delta == 0
                and signals.utilization <= config.idle_utilization)
        if shed_delta > 0:
            self._shed_streak += 1
            self._idle_streak = 0
        else:
            self._shed_streak = 0
            self._idle_streak = self._idle_streak + 1 if idle else 0

        fleet = signals.workers + signals.pending
        if (self._shed_streak >= config.grow_consecutive
                and fleet < config.max_workers
                and signals.pending == 0
                and (self.grows_remaining is None or self.grows_remaining > 0)
                and self._cooldown_elapsed(now)):
            target = min(config.max_workers, fleet + config.grow_step)
            self._record(now, "grow", signals, shed_delta, target)
            self._grows_spent += 1
            self._shed_streak = 0
            return "grow"
        if (self._idle_streak >= config.shrink_consecutive
                and fleet > config.min_workers
                and signals.pending == 0
                and self._cooldown_elapsed(now)):
            target = max(config.min_workers, fleet - config.shrink_step)
            self._record(now, "shrink", signals, shed_delta, target)
            self._idle_streak = 0
            return "shrink"
        return "hold"

    def _record(self, now: float, action: str, signals: AutoscaleSignals,
                shed_delta: int, target: int) -> None:
        self._last_action_at = now
        self.events.append(ScaleEvent(
            at_s=now, action=action, workers_before=signals.workers,
            workers_target=target, shed_delta=shed_delta,
            utilization=signals.utilization,
        ))
