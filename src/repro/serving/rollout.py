"""Zero-downtime model rollout state machine.

A rollout replaces the weights a fleet serves for one model **without a
restart and without shedding a single request**, built on the repo's
content addressing: every artifact is its SHA-256 digest, so "new model
version" is just "new digest" and the swap is a pointer flip, never a
data race.  :class:`RolloutController` is the *pure* decision core — no
sockets, no threads, no wall clock (time is injected) — so every phase
transition is unit-testable and property-testable in isolation; the
cluster front-end (:mod:`repro.serving.cluster`) is the I/O shell that
feeds it worker acks, canary comparisons and deaths, and executes the
decisions it returns.

The phases, in order::

    staging ──► canary ──► promoting ──► committed
       │           │            │
       └───────────┴────────────┴──────► rolled_back

* **staging** — the new digest has been published to the artifact store
  and every worker currently serving the model has been told to
  fetch-ahead and warm it (``prepare``).  The *old* digest keeps serving
  every request; nothing routes to the new one yet.  All workers acking
  (or dying — a dead worker cannot gate a rollout) advances to canary.
* **canary** — a configured fraction of the model's traffic is
  *mirrored*: the client's request is still answered by the stable
  digest, and a duplicate probe runs against the new digest on a worker
  that declared it.  Each (stable, canary) answer pair is one
  **comparison sample**: outputs bit-identical or not, plus both
  latencies.  Binarized inference is deterministic, so for an
  equivalent artifact the canary must match bit-for-bit — any mismatch
  is a wrong model, not noise, which is why ``max_mismatches`` defaults
  to zero.
* **promoting** — every worker flips its active version atomically
  (``ModelPool.set_active``); the controller waits for the commit acks.
  The old digest **stays resident** on every worker, so rollback from
  here is the same cheap pointer flip back.
* **committed / rolled_back** — terminal.  Only after commit does the
  fleet detach the old version (attach revocation); only after rollback
  does it detach the new one.

Every transition and every gating fact is appended to :attr:`events` as
a :class:`RolloutEvent` — the replayable timeline the golden tests under
``tests/golden/`` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "ROLLOUT_PHASES",
    "RolloutConfig",
    "RolloutController",
    "RolloutEvent",
]

#: Rollout phases in lifecycle order (two terminal states last).
ROLLOUT_PHASES = (
    "staging", "canary", "promoting", "committed", "rolled_back",
)

#: Phases a rollout can still move out of.
_LIVE_PHASES = ("staging", "canary", "promoting")


@dataclass(frozen=True)
class RolloutConfig:
    """Knobs governing one rollout's pace and its auto-rollback triggers.

    Examples
    --------
    >>> RolloutConfig(canary_fraction=0.25).validate() is None
    True
    >>> RolloutConfig(canary_fraction=1.5).validate()
    Traceback (most recent call last):
        ...
    ValueError: canary_fraction must be in (0, 1]
    """

    #: Fraction of the model's traffic mirrored to the canary digest.
    canary_fraction: float = 0.1
    #: Comparison samples required before promotion may trigger.
    min_canary_samples: int = 8
    #: Mismatched samples tolerated before auto-rollback.  Zero by
    #: default: binarized inference is deterministic, so an equivalent
    #: artifact *must* agree bit-for-bit.
    max_mismatches: int = 0
    #: Auto-rollback when mean canary latency exceeds this multiple of
    #: mean stable latency (requires ``min_canary_samples`` samples).
    latency_factor: float = 3.0
    #: Per-phase deadlines; expiry rolls back (never hangs forever).
    staging_timeout_s: float = 60.0
    canary_timeout_s: float = 120.0
    promote_timeout_s: float = 60.0
    #: Promote automatically once the canary gate passes.  With
    #: ``False`` the rollout waits in canary for an explicit
    #: :meth:`RolloutController.begin_promote`.
    auto_promote: bool = True

    def validate(self) -> None:
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in (0, 1]")
        if self.min_canary_samples < 1:
            raise ValueError("min_canary_samples must be at least 1")
        if self.max_mismatches < 0:
            raise ValueError("max_mismatches must be non-negative")
        if self.latency_factor <= 1.0:
            raise ValueError("latency_factor must exceed 1")
        for name in ("staging_timeout_s", "canary_timeout_s",
                     "promote_timeout_s"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class RolloutEvent:
    """One timeline entry: what happened, when, in which phase."""

    #: Seconds since the rollout started (injected clock).
    t_s: float
    #: Phase the rollout was in *after* the event applied.
    phase: str
    #: Machine-readable event kind (``prepared``, ``comparison``,
    #: ``promote``, ``rollback`` ...).
    kind: str
    #: Human-readable detail.
    detail: str = ""

    def as_record(self) -> Dict[str, object]:
        """JSON-stable form for golden-timeline snapshots."""
        return {"t_s": round(self.t_s, 6), "phase": self.phase,
                "kind": self.kind, "detail": self.detail}


@dataclass
class _CanaryStats:
    samples: int = 0
    mismatches: int = 0
    stable_latency_sum_s: float = 0.0
    canary_latency_sum_s: float = 0.0


class RolloutController:
    """Pure state machine for one model's digest rollout.

    Parameters
    ----------
    model:
        Canonical model name being rolled out.
    old_digest / new_digest:
        The currently-served and the candidate artifact digests.
    workers:
        Worker ids that must stage the new digest (the model's current
        holders).  Workers may die mid-rollout (:meth:`worker_gone`);
        a dead worker never gates progress.
    config:
        :class:`RolloutConfig`; validated on construction.
    clock:
        Injectable monotonic clock (seconds).  The controller never
        reads the wall clock itself, so tests drive time explicitly.

    The I/O shell calls the ``worker_*`` / ``record_comparison`` feed
    methods as facts arrive, then :meth:`decide` on its maintenance
    tick; ``decide`` returns ``"promote"``, ``"rollback"`` or ``None``
    and the shell executes the returned action (calling
    :meth:`begin_promote` / :meth:`force_rollback` back in).

    Examples
    --------
    >>> now = [0.0]
    >>> ctl = RolloutController("m", "a" * 64, "b" * 64, ["w0"],
    ...                         RolloutConfig(min_canary_samples=2),
    ...                         clock=lambda: now[0])
    >>> ctl.phase
    'staging'
    >>> ctl.worker_prepared("w0"); ctl.phase
    'canary'
    >>> ctl.record_comparison(True, 0.01, 0.011)
    >>> ctl.record_comparison(True, 0.01, 0.012)
    >>> ctl.decide()
    'promote'
    """

    def __init__(self, model: str, old_digest: str, new_digest: str,
                 workers: Iterable[str],
                 config: Optional[RolloutConfig] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if old_digest == new_digest:
            raise ValueError(
                "rollout requires a new digest: the artifact is already "
                "the served version (content addressing makes identical "
                "bytes the same model)")
        self.model = model
        self.old_digest = old_digest
        self.new_digest = new_digest
        self.config = config or RolloutConfig()
        self.config.validate()
        self._clock = clock if clock is not None else _no_clock
        self._t0 = self._clock()
        self.phase = "staging"
        self._phase_started_s = 0.0
        self.events: List[RolloutEvent] = []
        self._pending_prepare: Set[str] = set(workers)
        self._prepared: Set[str] = set()
        self._pending_commit: Set[str] = set()
        self._committed: Set[str] = set()
        self._canary = _CanaryStats()
        self._probe_counter = 0
        self._rollback_reason: Optional[str] = None
        self._event("start",
                    f"{old_digest[:12]} -> {new_digest[:12]} on "
                    f"{len(self._pending_prepare)} worker(s)")
        if not self._pending_prepare:
            self._roll_back("no workers hold the model; nothing to stage")

    # ------------------------------------------------------------- helpers
    def _now_s(self) -> float:
        return self._clock() - self._t0

    def _event(self, kind: str, detail: str = "") -> None:
        self.events.append(
            RolloutEvent(self._now_s(), self.phase, kind, detail))

    def _enter(self, phase: str, kind: str, detail: str = "") -> None:
        self.phase = phase
        self._phase_started_s = self._now_s()
        self._event(kind, detail)

    @property
    def done(self) -> bool:
        """Terminal — no further transitions will happen."""
        return self.phase in ("committed", "rolled_back")

    @property
    def rollback_reason(self) -> Optional[str]:
        return self._rollback_reason

    def prepared_workers(self) -> Tuple[str, ...]:
        """Workers whose prepare ack arrived (sorted)."""
        return tuple(sorted(self._prepared))

    # ------------------------------------------------------------- feeds
    def worker_prepared(self, worker: str) -> None:
        """A worker acked ``prepare``: the new digest is attached, warmed
        and registered (inactive) in its pool."""
        if self.done:
            return
        if worker in self._pending_prepare:
            self._pending_prepare.discard(worker)
            self._prepared.add(worker)
            self._event("prepared", worker)
            self._maybe_enter_canary()

    def worker_joined(self, worker: str) -> None:
        """A new worker began serving the model mid-rollout: it must
        stage the new digest too before promotion can proceed."""
        if self.done or worker in self._prepared:
            return
        if worker not in self._pending_prepare:
            self._pending_prepare.add(worker)
            self._event("joined", worker)

    def worker_gone(self, worker: str) -> None:
        """A worker died or was evicted: it gates nothing anymore.

        Losing the *last* staged worker rolls back — with nobody holding
        the new digest there is nothing left to canary or commit.
        """
        if self.done:
            return
        was_known = (worker in self._pending_prepare
                     or worker in self._prepared
                     or worker in self._pending_commit)
        self._pending_prepare.discard(worker)
        self._prepared.discard(worker)
        self._pending_commit.discard(worker)
        if was_known:
            self._event("worker_gone", worker)
        if self.phase == "staging":
            if not self._pending_prepare and not self._prepared:
                self._roll_back("every staging worker died")
            else:
                self._maybe_enter_canary()
        elif self.phase == "canary" and not self._prepared:
            self._roll_back("every canary holder died")
        elif self.phase == "promoting":
            self._maybe_commit()

    def record_comparison(self, match: bool, stable_latency_s: float,
                          canary_latency_s: float) -> None:
        """One mirrored probe resolved: the stable answer and the canary
        answer for the *same input* are in hand."""
        if self.phase != "canary":
            return
        stats = self._canary
        stats.samples += 1
        stats.stable_latency_sum_s += float(stable_latency_s)
        stats.canary_latency_sum_s += float(canary_latency_s)
        if not match:
            stats.mismatches += 1
            self._event("mismatch",
                        f"sample {stats.samples}: canary output diverged")
        else:
            self._event("comparison", f"sample {stats.samples}: match")

    def should_probe(self) -> bool:
        """Deterministically sample the canary fraction of requests.

        Integer-threshold sampling (``int(n*f) > int((n-1)*f)``) spreads
        probes evenly through the stream with no RNG, so replays are
        exact: request ``n`` probes iff the running quota crossed an
        integer.
        """
        if self.phase != "canary" or not self._prepared:
            return False
        self._probe_counter += 1
        fraction = self.config.canary_fraction
        return (int(self._probe_counter * fraction)
                > int((self._probe_counter - 1) * fraction))

    # ------------------------------------------------------------- decisions
    def _maybe_enter_canary(self) -> None:
        if (self.phase == "staging" and not self._pending_prepare
                and self._prepared):
            self._enter("canary", "canary_started",
                        f"{len(self._prepared)} holder(s), fraction="
                        f"{self.config.canary_fraction:g}")

    def _canary_verdict(self) -> Optional[str]:
        """``"promote"`` / ``"rollback"`` / ``None`` (keep sampling)."""
        stats = self._canary
        if stats.mismatches > self.config.max_mismatches:
            return "rollback"
        if stats.samples < self.config.min_canary_samples:
            return None
        if (stats.stable_latency_sum_s > 0.0
                and stats.canary_latency_sum_s
                > self.config.latency_factor * stats.stable_latency_sum_s):
            return "rollback"
        return "promote"

    def decide(self) -> Optional[str]:
        """The maintenance-tick question: act now, and how?

        Returns ``"promote"`` or ``"rollback"`` when the shell should
        act, ``None`` otherwise.  Phase timeouts resolve here too, so a
        stuck rollout (worker never acks, canary never reaches quota)
        always terminates in ``rolled_back`` rather than hanging.
        """
        if self.done:
            return None
        in_phase_s = self._now_s() - self._phase_started_s
        if self.phase == "staging":
            if in_phase_s > self.config.staging_timeout_s:
                self._roll_back(
                    f"staging timed out after {in_phase_s:.1f}s waiting "
                    f"for {sorted(self._pending_prepare)}")
                return "rollback"
            return None
        if self.phase == "canary":
            verdict = self._canary_verdict()
            if verdict == "rollback":
                stats = self._canary
                self._roll_back(
                    f"canary failed: {stats.mismatches} mismatch(es) in "
                    f"{stats.samples} sample(s)"
                    if stats.mismatches > self.config.max_mismatches
                    else "canary latency regression: mean "
                         f"{_mean(stats.canary_latency_sum_s, stats.samples):.6f}s"
                         f" vs stable "
                         f"{_mean(stats.stable_latency_sum_s, stats.samples):.6f}s")
                return "rollback"
            if verdict == "promote":
                if self.config.auto_promote:
                    return "promote"
                return None
            if in_phase_s > self.config.canary_timeout_s:
                self._roll_back(
                    f"canary timed out after {in_phase_s:.1f}s with "
                    f"{self._canary.samples}/"
                    f"{self.config.min_canary_samples} samples")
                return "rollback"
            return None
        # promoting
        if in_phase_s > self.config.promote_timeout_s:
            self._roll_back(
                f"promote timed out after {in_phase_s:.1f}s waiting for "
                f"{sorted(self._pending_commit)}")
            return "rollback"
        return None

    def begin_promote(self) -> Tuple[str, ...]:
        """Enter ``promoting``; returns the workers that must ack commit."""
        if self.phase != "canary":
            raise ValueError(
                f"cannot promote from phase {self.phase!r}")
        self._pending_commit = set(self._prepared)
        self._enter("promoting", "promote",
                    f"committing on {len(self._pending_commit)} worker(s)")
        self._maybe_commit()
        return tuple(sorted(self._pending_commit))

    def worker_committed(self, worker: str) -> None:
        """A worker acked ``commit``: its active version flipped."""
        if self.phase != "promoting":
            return
        if worker in self._pending_commit:
            self._pending_commit.discard(worker)
            self._committed.add(worker)
            self._event("committed", worker)
            self._maybe_commit()

    def _maybe_commit(self) -> None:
        if self.phase == "promoting" and not self._pending_commit:
            if self._committed:
                self._enter("committed", "complete",
                            f"active digest is {self.new_digest[:12]}")
            else:
                self._roll_back("every promoting worker died")

    def force_rollback(self, reason: str = "operator request") -> None:
        """Abort from any live phase (idempotent once terminal)."""
        if not self.done:
            self._roll_back(reason)

    def _roll_back(self, reason: str) -> None:
        self._rollback_reason = reason
        self._enter("rolled_back", "rollback", reason)

    # ------------------------------------------------------------- reporting
    def canary_summary(self) -> Dict[str, object]:
        stats = self._canary
        return {
            "samples": stats.samples,
            "mismatches": stats.mismatches,
            "stable_mean_latency_s": _mean(
                stats.stable_latency_sum_s, stats.samples),
            "canary_mean_latency_s": _mean(
                stats.canary_latency_sum_s, stats.samples),
        }

    def status(self) -> Dict[str, object]:
        """Snapshot for operators (`cluster.rollout_status()` / CLI)."""
        return {
            "model": self.model,
            "phase": self.phase,
            "old_digest": self.old_digest,
            "new_digest": self.new_digest,
            "pending_prepare": sorted(self._pending_prepare),
            "prepared": sorted(self._prepared),
            "pending_commit": sorted(self._pending_commit),
            "committed": sorted(self._committed),
            "canary": self.canary_summary(),
            "rollback_reason": self._rollback_reason,
            "events": len(self.events),
        }

    def timeline(self) -> List[Dict[str, object]]:
        """The full event timeline as JSON-stable records."""
        return [event.as_record() for event in self.events]


def _mean(total: float, count: int) -> float:
    return total / count if count else 0.0


def _no_clock() -> float:
    """Default clock for shells that feed time implicitly: a constant.

    The controller is pure; when nobody injects a clock every event is
    stamped ``t_s=0`` and the timeout logic in :meth:`decide` never
    fires — correct for tests that only exercise the ordering logic.
    The cluster always injects ``time.monotonic``.
    """
    return 0.0
