"""Latency and throughput metrics for the serving subsystem.

The serving layer cares about *tail* behaviour, not averages: a scheduler
that doubles throughput while pushing p99 latency past the budget has not
helped anyone.  :class:`LatencyTracker` collects per-request latencies from
worker threads and :class:`LatencySummary` freezes them into the p50/p90/p99
figures the reports and benchmarks consume.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

#: Default sample-window size for :class:`LatencyTracker`.  Percentiles are
#: computed over the most recent window; the total request count is exact.
DEFAULT_WINDOW = 65_536


def percentile_ms(samples_s: Sequence[float], q: float) -> float:
    """Percentile (0..100) of a list of second-valued samples, in ms."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(samples_s) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples_s, dtype=np.float64), q)) * 1000.0


@dataclass(frozen=True)
class LatencySummary:
    """Frozen latency distribution of a set of requests (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_samples(cls, samples_s: Sequence[float]) -> "LatencySummary":
        if len(samples_s) == 0:
            return cls(count=0, mean_ms=0.0, p50_ms=0.0, p90_ms=0.0,
                       p99_ms=0.0, max_ms=0.0)
        arr = np.asarray(samples_s, dtype=np.float64)
        return cls(
            count=int(arr.size),
            mean_ms=float(arr.mean()) * 1000.0,
            p50_ms=percentile_ms(samples_s, 50.0),
            p90_ms=percentile_ms(samples_s, 90.0),
            p99_ms=percentile_ms(samples_s, 99.0),
            max_ms=float(arr.max()) * 1000.0,
        )

    def rows(self) -> List[tuple]:
        """(key, value) pairs for :func:`repro.analysis.reporting.format_kv`."""
        return [
            ("requests", self.count),
            ("latency mean (ms)", self.mean_ms),
            ("latency p50 (ms)", self.p50_ms),
            ("latency p90 (ms)", self.p90_ms),
            ("latency p99 (ms)", self.p99_ms),
            ("latency max (ms)", self.max_ms),
        ]


class LatencyTracker:
    """Thread-safe accumulator of per-request latencies (seconds).

    Memory is bounded: only the most recent ``window`` samples are kept for
    percentile computation (a service at production rates would otherwise
    grow without limit), while the total recorded count stays exact.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self._lock = threading.Lock()
        self._samples: "deque[float]" = deque(maxlen=self.window)
        self._total = 0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        with self._lock:
            self._samples.append(float(seconds))
            self._total += 1

    def __len__(self) -> int:
        """Total number of recorded samples (not capped by the window)."""
        with self._lock:
            return self._total

    def samples(self) -> List[float]:
        """Snapshot copy of the windowed latencies (seconds)."""
        with self._lock:
            return list(self._samples)

    def quantile_s(self, q: float = 99.0) -> tuple:
        """``(total_count, q-th percentile in seconds)`` over the window.

        The cheap accessor the cluster's retry/hedging timers poll — one
        percentile, no :class:`LatencySummary` construction.
        """
        with self._lock:
            window = list(self._samples)
            total = self._total
        if not window:
            return total, 0.0
        return total, float(np.percentile(
            np.asarray(window, dtype=np.float64), q))

    def summary(self) -> LatencySummary:
        with self._lock:
            window = list(self._samples)
            total = self._total
        summary = LatencySummary.from_samples(window)
        if total != summary.count:
            # Window rolled over: report the exact total request count with
            # percentiles computed over the retained window.
            summary = LatencySummary(
                count=total,
                mean_ms=summary.mean_ms,
                p50_ms=summary.p50_ms,
                p90_ms=summary.p90_ms,
                p99_ms=summary.p99_ms,
                max_ms=summary.max_ms,
            )
        return summary
