#!/usr/bin/env python
"""Schema check for the BENCH trajectory files.

Every ``BENCH_*.json`` holds ``{"records": [...]}`` where each record must
carry the keys the trajectory tooling pivots on — one from each group:

* identity:  ``op`` or ``model``
* workload:  ``shape`` or ``batch``
* rate:      ``ns_per_op`` or ``req_per_s``

Emitters may (and do) record richer fields alongside — ``offered_batch``,
``speedup_vs_sequential``, ``workers`` — but the canonical spellings above
must always be present so cross-benchmark tooling never needs per-file
adapters.  Run with explicit paths or no arguments (discovers
``benchmarks/BENCH_*.json`` relative to the repository root):

    python tools/check_bench_schema.py
    python tools/check_bench_schema.py benchmarks/BENCH_kernels_micro.json
"""

import glob
import json
import os
import sys

#: Each record must contain at least one key from every group.
KEY_GROUPS = (
    ("op", "model"),
    ("shape", "batch"),
    ("ns_per_op", "req_per_s"),
)

#: Optional per-record ``backend`` field (kernel backend the record was
#: measured with, e.g. BENCH_compiled_backend.json).  When present it must
#: name a registered backend — kept in lockstep with
#: ``repro.core.backends.BACKEND_CHOICES`` without importing the package.
BACKEND_VALUES = frozenset({"auto", "numpy", "cffi", "numba"})

#: Extra required keys for specific ``op`` values.  ``chaos`` records
#: (BENCH_chaos.json) must carry the full request accounting — the file's
#: claim is "no request was lost under fault injection", which is only
#: checkable when every bucket is recorded — plus the correctness verdict.
OP_REQUIRED_KEYS = {
    "chaos": ("scenario", "seed", "offered", "completed", "shed",
              "deadline_expired", "failed", "retries", "hedges",
              "quarantined", "respawns", "faults_fired", "bit_identical"),
    "scenario": ("scenario", "seed", "offered", "completed", "shed",
                 "deadline_expired", "failed", "per_class", "digest",
                 "replay_identical", "bit_identical"),
    "rollout": ("scenario", "seed", "workers", "offered", "completed",
                "bit_identical"),
}

#: Fault scenarios a chaos record may name: the fault classes of
#: ``repro.serving.faults`` plus the fault-free control and the combined
#: run — kept in lockstep without importing the package.
CHAOS_SCENARIOS = frozenset({
    "baseline", "delay", "drop", "duplicate", "stall", "crash",
    "partition", "slow_start", "mixed",
})

#: Multi-tenant scenarios a scenario record may name: the bundled specs of
#: ``repro.serving.scenarios`` plus the bench's overload pass — kept in
#: lockstep without importing the package.
SCENARIO_NAMES = frozenset({
    "steady_mix", "diurnal", "flash_crowd", "multi_burst", "slow_drip",
    "flash_crowd_overload",
})

#: SLO classes a scenario record's per_class buckets may use.
SLO_CLASSES = frozenset({"interactive", "standard", "batch"})

#: Rollout drills a rollout record may name (BENCH_rollout.json) and the
#: terminal phase each one must land in — a "commit" record that rolled
#: back (or vice versa) means the drill did not exercise what it claims.
ROLLOUT_EXPECTED_PHASE = {
    "commit": "committed",
    "divergent": "rolled_back",
    "operator": "rolled_back",
}
ROLLOUT_SCENARIOS = frozenset(ROLLOUT_EXPECTED_PHASE) | {"cache_uniformity"}


def check_file(path: str) -> list:
    """Return a list of problem strings for one BENCH file."""
    problems = []
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    records = payload.get("records") if isinstance(payload, dict) else None
    if not isinstance(records, list) or not records:
        return [f"{path}: expected a non-empty {{'records': [...]}} payload"]
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            problems.append(f"{path}: record {index} is not an object")
            continue
        for group in KEY_GROUPS:
            if not any(key in record for key in group):
                problems.append(
                    f"{path}: record {index} is missing every one of "
                    f"{'/'.join(group)} (keys: {sorted(record)})"
                )
        backend = record.get("backend")
        if backend is not None and backend not in BACKEND_VALUES:
            problems.append(
                f"{path}: record {index} has unknown backend {backend!r} "
                f"(expected one of {sorted(BACKEND_VALUES)})"
            )
        required = OP_REQUIRED_KEYS.get(record.get("op"))
        if required:
            missing = [key for key in required if key not in record]
            if missing:
                problems.append(
                    f"{path}: record {index} (op={record['op']!r}) is "
                    f"missing {'/'.join(missing)}"
                )
        if record.get("op") == "chaos":
            scenario = record.get("scenario")
            if scenario is not None and scenario not in CHAOS_SCENARIOS:
                problems.append(
                    f"{path}: record {index} has unknown chaos scenario "
                    f"{scenario!r} (expected one of {sorted(CHAOS_SCENARIOS)})"
                )
            accounted = sum(record.get(key, 0) or 0 for key in
                            ("completed", "shed", "deadline_expired",
                             "failed"))
            if "offered" in record and accounted != record["offered"]:
                problems.append(
                    f"{path}: record {index} loses requests: "
                    f"completed+shed+deadline_expired+failed = {accounted} "
                    f"!= offered = {record['offered']}"
                )
            if record.get("bit_identical") is not True:
                problems.append(
                    f"{path}: record {index} ({scenario}) is not "
                    "bit_identical — a chaos record must never land with "
                    "diverged outputs"
                )
        if record.get("op") == "scenario":
            problems.extend(
                f"{path}: record {index} {problem}"
                for problem in _check_scenario_record(record)
            )
        if record.get("op") == "rollout":
            problems.extend(
                f"{path}: record {index} {problem}"
                for problem in _check_rollout_record(record)
            )
    problems.extend(
        f"{path}: {problem}"
        for problem in _check_rollout_uniformity(
            [r for r in records if isinstance(r, dict)
             and r.get("op") == "rollout"
             and r.get("scenario") == "cache_uniformity"])
    )
    return problems


def _check_rollout_record(record: dict) -> list:
    """Rollout-specific rules: known drills, conservation, phase."""
    problems = []
    scenario = record.get("scenario")
    if scenario is not None and scenario not in ROLLOUT_SCENARIOS:
        problems.append(
            f"has unknown rollout scenario {scenario!r} "
            f"(expected one of {sorted(ROLLOUT_SCENARIOS)})"
        )
    if record.get("bit_identical") is not True:
        problems.append(
            f"({scenario}) is not bit_identical — a rollout record must "
            "never land with outputs diverged from the stable digest"
        )
    if scenario == "cache_uniformity":
        missing = [key for key in ("hits", "misses") if key not in record]
        if missing:
            problems.append(f"(cache_uniformity) is missing "
                            f"{'/'.join(missing)}")
        elif "offered" in record:
            touched = (record.get("hits") or 0) + (record.get("misses") or 0)
            if touched != record["offered"]:
                problems.append(
                    f"(cache_uniformity) hits+misses = {touched} != "
                    f"offered = {record['offered']} — every request must "
                    "pass through the cluster-wide cache"
                )
        return problems
    missing = [key for key in ("shed", "failed", "phase") if key not in record]
    if missing:
        problems.append(f"({scenario}) is missing {'/'.join(missing)}")
        return problems
    accounted = sum(record.get(key, 0) or 0 for key in
                    ("completed", "shed", "failed"))
    if "offered" in record and accounted != record["offered"]:
        problems.append(
            f"loses requests: completed+shed+failed = {accounted} "
            f"!= offered = {record['offered']}"
        )
    expected = ROLLOUT_EXPECTED_PHASE.get(scenario)
    if expected and record["phase"] != expected:
        problems.append(
            f"({scenario}) landed in phase {record['phase']!r}, "
            f"expected {expected!r}"
        )
    return problems


def _check_rollout_uniformity(records: list) -> list:
    """Cache hit/miss counts must not vary with fleet size."""
    counts = {}
    for record in records:
        key = (record.get("model"), record.get("offered"))
        counts.setdefault(key, set()).add(
            (record.get("hits"), record.get("misses")))
    return [
        f"cache_uniformity counts for model={model!r} offered={offered} "
        f"vary with fleet size: {sorted(seen)} — the cluster-wide cache "
        "must make hit rates routing-independent"
        for (model, offered), seen in sorted(counts.items(),
                                             key=lambda kv: str(kv[0]))
        if len(seen) > 1
    ]


def _check_scenario_record(record: dict) -> list:
    """Scenario-specific rules: known names, per-class conservation."""
    problems = []
    scenario = record.get("scenario")
    if scenario is not None and scenario not in SCENARIO_NAMES:
        problems.append(
            f"has unknown scenario {scenario!r} "
            f"(expected one of {sorted(SCENARIO_NAMES)})"
        )
    for flag in ("bit_identical", "replay_identical"):
        if record.get(flag) is not True:
            problems.append(
                f"({scenario}) is not {flag} — a scenario record must "
                "never land with diverged outputs or an unreplayable "
                "schedule"
            )
    per_class = record.get("per_class")
    if not isinstance(per_class, dict):
        return problems
    unknown = sorted(set(per_class) - SLO_CLASSES)
    if unknown:
        problems.append(
            f"has unknown SLO classes {unknown} "
            f"(expected a subset of {sorted(SLO_CLASSES)})"
        )
    totals = {key: 0 for key in ("offered", "completed", "shed",
                                 "deadline_expired", "failed")}
    for slo, bucket in per_class.items():
        if not isinstance(bucket, dict):
            problems.append(f"per_class[{slo!r}] is not an object")
            continue
        accounted = sum(bucket.get(key, 0) or 0 for key in
                        ("completed", "shed", "deadline_expired", "failed"))
        if "offered" in bucket and accounted != bucket["offered"]:
            problems.append(
                f"loses {slo} requests: completed+shed+deadline_expired"
                f"+failed = {accounted} != offered = {bucket['offered']}"
            )
        for key in totals:
            totals[key] += bucket.get(key, 0) or 0
    for key, value in totals.items():
        if key in record and record[key] != value:
            problems.append(
                f"per-class {key} sums to {value} but the record "
                f"claims {record[key]}"
            )
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv:
        paths = argv
    else:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "benchmarks", "BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    problems = []
    for path in paths:
        problems.extend(check_file(path))
    for problem in problems:
        print(f"SCHEMA: {problem}", file=sys.stderr)
    if not problems:
        print(f"bench schema OK: {len(paths)} file(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
