#!/usr/bin/env python
"""Execute every fenced shell block of the README (the docs-smoke gate).

A quickstart that drifts from the code is worse than none, so CI runs each
```bash``/```sh`` fence of ``README.md`` through ``bash -euo pipefail``
from the repository root with ``PYTHONPATH=src`` pre-set.  Blocks that must
not execute (sample output, sketches of future work) belong in ```text``
fences — the runner only picks up ``bash``/``sh``/``shell`` languages.

    python tools/run_readme_blocks.py              # README.md
    python tools/run_readme_blocks.py docs/foo.md  # any markdown file
"""

import os
import re
import subprocess
import sys

FENCE_RE = re.compile(
    r"^```(bash|sh|shell)\s*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)

#: Generous per-block timeout: the heaviest quickstart block is a serving
#: benchmark sweep, which finishes in well under this even on tiny runners.
BLOCK_TIMEOUT_S = 1200


def shell_blocks(path: str) -> list:
    with open(path, encoding="utf-8") as fh:
        content = fh.read()
    return [match.group(2) for match in FENCE_RE.finditer(content)]


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = argv or [os.path.join(root, "README.md")]

    env = dict(os.environ)
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    total = 0
    for path in paths:
        blocks = shell_blocks(path)
        if not blocks:
            print(f"WARNING: {path} has no executable shell blocks",
                  file=sys.stderr)
        for index, block in enumerate(blocks, start=1):
            total += 1
            label = f"{os.path.relpath(path, root)} block {index}/{len(blocks)}"
            print(f"=== {label} ===")
            print(block.rstrip())
            result = subprocess.run(
                ["bash", "-euo", "pipefail", "-c", block],
                cwd=root, env=env, timeout=BLOCK_TIMEOUT_S,
            )
            if result.returncode != 0:
                print(f"FAIL: {label} exited {result.returncode}",
                      file=sys.stderr)
                return result.returncode
    print(f"docs-smoke OK: {total} shell block(s) executed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
