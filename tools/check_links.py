#!/usr/bin/env python
"""Markdown link checker for the repository docs.

Walks the given markdown files (default: every ``*.md`` at the repository
root plus ``docs/``), extracts inline links and validates the *relative*
ones:

* the target file must exist (relative to the linking file);
* a ``#fragment`` pointing into a markdown file must match one of its
  headings (GitHub anchor slugging: lowercase, spaces to dashes,
  punctuation dropped).

External ``http(s)``/``mailto`` links are not fetched — CI must not depend
on the network — but a bare-looking target with a scheme typo still fails
the existence check, which is the drift this tool exists to catch.

    python tools/check_links.py
    python tools/check_links.py README.md docs/architecture.md
"""

import glob
import os
import re
import sys

#: Inline markdown links: [text](target) — images share the syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (lowercase, dashes, punctuation out)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as fh:
        content = CODE_FENCE_RE.sub("", fh.read())
    return {github_anchor(m.group(1)) for m in HEADING_RE.finditer(content)}


def check_file(path: str) -> list:
    problems = []
    with open(path, encoding="utf-8") as fh:
        raw = fh.read()
    content = CODE_FENCE_RE.sub("", raw)  # fenced blocks are not links
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external; not fetched in CI
        base, _, fragment = target.partition("#")
        directory = os.path.dirname(os.path.abspath(path))
        if base:
            resolved = os.path.normpath(os.path.join(directory, base))
            if not os.path.exists(resolved):
                problems.append(f"{path}: broken link target {target!r}")
                continue
        else:
            resolved = os.path.abspath(path)  # same-file anchor
        if fragment and resolved.endswith(".md"):
            if github_anchor(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{path}: link {target!r} points at a missing heading "
                    f"anchor #{fragment}"
                )
    return problems


def default_paths() -> list:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = sorted(glob.glob(os.path.join(root, "*.md")))
    paths += sorted(glob.glob(os.path.join(root, "docs", "**", "*.md"),
                              recursive=True))
    return paths


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    paths = argv or default_paths()
    problems = []
    for path in paths:
        if not os.path.exists(path):
            problems.append(f"{path}: file not found")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(f"LINK: {problem}", file=sys.stderr)
    if not problems:
        print(f"links OK: {len(paths)} file(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
