"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so
that legacy (non-PEP-660) editable installs keep working on environments
whose setuptools cannot build editable wheels (e.g. offline machines without
the ``wheel`` package).
"""

from setuptools import setup

setup()
