"""Tests for sign binarization and bit-plane decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import binarize


class TestSignBinarization:
    def test_zero_maps_to_one(self):
        np.testing.assert_array_equal(
            binarize.binarize_sign(np.array([-1.5, -0.0, 0.0, 0.5])), [0, 1, 1, 1]
        )

    def test_bits_to_values_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=(3, 7), dtype=np.uint8)
        values = binarize.bits_to_values(bits)
        assert set(np.unique(values)).issubset({-1.0, 1.0})
        np.testing.assert_array_equal(binarize.values_to_bits(values), bits)

    def test_bits_to_values_rejects_invalid(self):
        with pytest.raises(ValueError):
            binarize.bits_to_values(np.array([0, 2]))

    def test_values_to_bits_rejects_invalid(self):
        with pytest.raises(ValueError):
            binarize.values_to_bits(np.array([0.5, 1.0]))


class TestBitplanes:
    def test_split_combine_roundtrip(self, rng):
        image = rng.integers(0, 256, size=(2, 4, 4, 3)).astype(np.uint8)
        planes = binarize.split_bitplanes(image)
        assert planes.shape == (8, 2, 4, 4, 3)
        np.testing.assert_array_equal(binarize.combine_bitplanes(planes), image)

    def test_plane_weights_match_eqn2(self):
        np.testing.assert_array_equal(
            binarize.bitplane_weights(8), [1, 2, 4, 8, 16, 32, 64, 128]
        )

    def test_known_value_decomposition(self):
        image = np.array([[[[170]]]], dtype=np.uint8)  # 0b10101010
        planes = binarize.split_bitplanes(image)
        np.testing.assert_array_equal(planes[:, 0, 0, 0, 0], [0, 1, 0, 1, 0, 1, 0, 1])

    def test_split_rejects_float_images(self):
        with pytest.raises(ValueError):
            binarize.split_bitplanes(np.zeros((1, 2, 2, 3), dtype=np.float32))

    def test_split_rejects_negative_values(self):
        with pytest.raises(ValueError):
            binarize.split_bitplanes(np.array([-1, 3], dtype=np.int32))

    def test_split_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binarize.split_bitplanes(np.array([300], dtype=np.int32), bits=8)

    def test_reduced_bit_width(self):
        image = np.array([5, 7], dtype=np.uint8)
        planes = binarize.split_bitplanes(image, bits=4)
        assert planes.shape == (4, 2)
        np.testing.assert_array_equal(binarize.combine_bitplanes(planes), image)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=64))
    def test_roundtrip_property(self, values):
        image = np.array(values, dtype=np.uint8)
        planes = binarize.split_bitplanes(image)
        np.testing.assert_array_equal(binarize.combine_bitplanes(planes), image)
