"""Property-based randomized tests for the bitpack kernels.

Seeded randomized sweeps (plain NumPy RNG — no extra dependencies) over the
properties the packed arithmetic must uphold for *every* shape, word size
and memory layout, not just the sizes the unit tests happen to pick:

* ``pack_bits``/``unpack_bits`` round-trip exactly, including odd (non
  word-multiple) lengths, arbitrary pack axes and non-contiguous views;
* every popcount implementation (hardware ufunc when present, SWAR
  fallback, byte-LUT reference) agrees with Python's ``int.bit_count``;
* the tiled xor/and popcount GEMMs match a bit-level reference on random
  operands across word sizes, odd widths and non-contiguous inputs — on
  both dispatch paths (``np.bitwise_count`` and the SWAR fallback);
* the bipolar/unipolar packed dot products match exact ±1 / {0,1} integer
  arithmetic.

These are the refactoring guard rails for the serving hot path: any future
kernel rewrite that breaks a corner case (padding bits, stride tricks,
dtype dispatch) fails here before it can ship.
"""

import numpy as np
import pytest

from repro.core import bitpack

#: Randomized cases per property; seeds are fixed so failures reproduce.
N_CASES = 25


def random_case(rng):
    """One random (word_size, length) pair biased toward odd widths."""
    word_size = int(rng.choice(bitpack.SUPPORTED_WORD_SIZES))
    length = int(rng.integers(1, 3 * word_size + 2))
    return word_size, length


@pytest.fixture(params=["dispatch-default", "dispatch-swar"])
def popcount_dispatch(request, monkeypatch):
    """Run the property under both popcount dispatch paths.

    On NumPy >= 2 the default path is ``np.bitwise_count``; monkeypatching
    the module-level ``popcount_words`` to the SWAR fallback exercises the
    code path NumPy 1.x users get, regardless of the NumPy running the
    suite.
    """
    if request.param == "dispatch-swar":
        monkeypatch.setattr(bitpack, "popcount_words", bitpack.popcount_swar)
    return request.param


class TestPackUnpackRoundTrip:
    def test_round_trip_random_shapes_axes_and_word_sizes(self):
        rng = np.random.default_rng(101)
        for _ in range(N_CASES):
            word_size, length = random_case(rng)
            ndim = int(rng.integers(1, 4))
            shape = [int(rng.integers(1, 6)) for _ in range(ndim - 1)]
            axis = int(rng.integers(0, ndim))
            shape.insert(axis, length)
            bits = rng.integers(0, 2, size=shape, dtype=np.uint8)
            packed = bitpack.pack_bits(bits, word_size=word_size, axis=axis)
            assert packed.dtype == bitpack.word_dtype(word_size)
            assert packed.shape[axis] == bitpack.words_per_channel(length, word_size)
            recovered = bitpack.unpack_bits(packed, length, axis=axis)
            np.testing.assert_array_equal(recovered, bits)

    def test_round_trip_non_contiguous_views(self):
        rng = np.random.default_rng(102)
        for _ in range(N_CASES):
            word_size, length = random_case(rng)
            rows = int(rng.integers(2, 8))
            base = rng.integers(0, 2, size=(rows * 2, length * 2), dtype=np.uint8)
            view = base[::2, ::2]  # stride-2 in both axes: non-contiguous
            assert not view.flags["C_CONTIGUOUS"]
            packed = bitpack.pack_bits(view, word_size=word_size, axis=1)
            recovered = bitpack.unpack_bits(packed, length, axis=1)
            np.testing.assert_array_equal(recovered, view)
            # Transposed (F-ordered) input must pack identically too.
            packed_t = bitpack.pack_bits(view.T, word_size=word_size, axis=0)
            np.testing.assert_array_equal(np.moveaxis(packed_t, 0, 1), packed)

    def test_padding_bits_are_zero(self):
        rng = np.random.default_rng(103)
        for _ in range(N_CASES):
            word_size, length = random_case(rng)
            bits = np.ones((3, length), dtype=np.uint8)
            packed = bitpack.pack_bits(bits, word_size=word_size, axis=1)
            total_ones = int(bitpack.popcount(packed).sum())
            assert total_ones == 3 * length  # padding contributed no 1-bits
            _ = rng  # keep the loop seeded/reproducible


class TestPopcountImplementations:
    def test_all_implementations_match_python_bit_count(self):
        rng = np.random.default_rng(201)
        for _ in range(N_CASES):
            word_size = int(rng.choice(bitpack.SUPPORTED_WORD_SIZES))
            dtype = bitpack.word_dtype(word_size)
            words = rng.integers(
                0, 2 ** word_size, size=(int(rng.integers(1, 64)),), dtype=np.uint64
            ).astype(dtype)
            expected = np.array(
                [int(w).bit_count() for w in words.tolist()], dtype=np.int64
            )
            np.testing.assert_array_equal(bitpack.popcount(words), expected)
            np.testing.assert_array_equal(
                bitpack.popcount_lut(words).astype(np.int64), expected
            )
            swar = bitpack.popcount_swar(words)
            assert swar.dtype == dtype  # stays in-register width
            np.testing.assert_array_equal(swar.astype(np.int64), expected)

    def test_extreme_words(self):
        for word_size in bitpack.SUPPORTED_WORD_SIZES:
            dtype = bitpack.word_dtype(word_size)
            words = np.array([0, 1, 2 ** word_size - 1], dtype=dtype)
            expected = np.array([0, 1, word_size], dtype=np.int64)
            np.testing.assert_array_equal(bitpack.popcount(words), expected)
            np.testing.assert_array_equal(
                bitpack.popcount_swar(words).astype(np.int64), expected
            )

    def test_rejects_signed_input(self):
        signed = np.array([1, 2], dtype=np.int64)
        for func in (bitpack.popcount, bitpack.popcount_swar, bitpack.popcount_lut):
            with pytest.raises(ValueError):
                func(signed)


class TestPopcountGemms:
    def _random_operands(self, rng):
        word_size, length = random_case(rng)
        rows = int(rng.integers(1, 12))
        cols = int(rng.integers(1, 12))
        a_bits = rng.integers(0, 2, size=(rows, length), dtype=np.uint8)
        b_bits = rng.integers(0, 2, size=(cols, length), dtype=np.uint8)
        a = bitpack.pack_bits(a_bits, word_size=word_size, axis=1)
        b = bitpack.pack_bits(b_bits, word_size=word_size, axis=1)
        return a_bits, b_bits, a, b

    def test_xor_gemm_matches_bit_reference(self, popcount_dispatch):
        rng = np.random.default_rng(301)
        for _ in range(N_CASES):
            a_bits, b_bits, a, b = self._random_operands(rng)
            got = bitpack.xor_popcount_gemm(a, b)
            want = (a_bits[:, None, :] != b_bits[None, :, :]).sum(
                axis=-1, dtype=np.int64
            )
            np.testing.assert_array_equal(got, want)

    def test_and_gemm_matches_bit_reference(self, popcount_dispatch):
        rng = np.random.default_rng(302)
        for _ in range(N_CASES):
            a_bits, b_bits, a, b = self._random_operands(rng)
            got = bitpack.and_popcount_gemm(a, b)
            want = (a_bits[:, None, :] & b_bits[None, :, :]).sum(
                axis=-1, dtype=np.int64
            )
            np.testing.assert_array_equal(got, want)

    def test_gemm_accepts_non_contiguous_operands(self, popcount_dispatch):
        rng = np.random.default_rng(303)
        for _ in range(N_CASES):
            a_bits, b_bits, a, b = self._random_operands(rng)
            a_view = np.repeat(a, 2, axis=0)[::2]  # row-strided view
            b_view = np.asfortranarray(b)
            got = bitpack.xor_popcount_gemm(a_view, b_view)
            want = (a_bits[:, None, :] != b_bits[None, :, :]).sum(
                axis=-1, dtype=np.int64
            )
            np.testing.assert_array_equal(got, want)

    def test_gemm_out_parameter(self):
        rng = np.random.default_rng(304)
        _, _, a, b = self._random_operands(rng)
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.int64)
        result = bitpack.xor_popcount_gemm(a, b, out=out)
        assert result is out
        np.testing.assert_array_equal(out, bitpack.xor_popcount_gemm(a, b))

    def test_gemm_spans_multiple_tiles(self, popcount_dispatch):
        # Exceed both tile bounds so the blocked path stitches tiles.
        rng = np.random.default_rng(305)
        rows = 2 * 512 + 13
        cols = 64 + 7
        length = 70  # odd width across two 64-bit words
        a_bits = rng.integers(0, 2, size=(rows, length), dtype=np.uint8)
        b_bits = rng.integers(0, 2, size=(cols, length), dtype=np.uint8)
        a = bitpack.pack_bits(a_bits, word_size=64, axis=1)
        b = bitpack.pack_bits(b_bits, word_size=64, axis=1)
        got = bitpack.xor_popcount_gemm(a, b)
        want = (a_bits[:, None, :] != b_bits[None, :, :]).sum(axis=-1, dtype=np.int64)
        np.testing.assert_array_equal(got, want)

    def test_gemm_input_validation(self):
        a = np.zeros((2, 3), dtype=np.uint64)
        with pytest.raises(ValueError):
            bitpack.xor_popcount_gemm(a, np.zeros((2, 4), dtype=np.uint64))
        with pytest.raises(ValueError):
            bitpack.xor_popcount_gemm(a, np.zeros((2, 3), dtype=np.uint32))
        with pytest.raises(ValueError):
            bitpack.xor_popcount_gemm(a, np.zeros((2, 2, 3), dtype=np.uint64))


class TestPackedDotProducts:
    def test_bipolar_dot_matches_sign_arithmetic(self, popcount_dispatch):
        rng = np.random.default_rng(401)
        for _ in range(N_CASES):
            word_size, length = random_case(rng)
            a_bits = rng.integers(0, 2, size=(length,), dtype=np.uint8)
            b_bits = rng.integers(0, 2, size=(length,), dtype=np.uint8)
            a = bitpack.pack_bits(a_bits, word_size=word_size)
            b = bitpack.pack_bits(b_bits, word_size=word_size)
            got = bitpack.packed_dot_bipolar(a, b, length)
            a_pm = 2.0 * a_bits - 1.0
            b_pm = 2.0 * b_bits - 1.0
            assert got == int(np.dot(a_pm, b_pm))

    def test_unipolar_dot_matches_mixed_arithmetic(self, popcount_dispatch):
        rng = np.random.default_rng(402)
        for _ in range(N_CASES):
            word_size, length = random_case(rng)
            x_bits = rng.integers(0, 2, size=(length,), dtype=np.uint8)
            w_bits = rng.integers(0, 2, size=(length,), dtype=np.uint8)
            x = bitpack.pack_bits(x_bits, word_size=word_size)
            w = bitpack.pack_bits(w_bits, word_size=word_size)
            got = bitpack.packed_dot_unipolar(x, w)
            w_pm = 2.0 * w_bits - 1.0
            assert got == int(np.dot(x_bits.astype(np.float64), w_pm))
