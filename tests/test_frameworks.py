"""Tests for the simulated deployment frameworks (Table III behaviours)."""

import pytest

from repro.frameworks import all_runners, get_runner
from repro.frameworks.base import RunStatus
from repro.frameworks.cnndroid import CnnDroidCpuRunner, CnnDroidGpuRunner
from repro.frameworks.phonebit_runner import PhoneBitRunner
from repro.frameworks.registry import FRAMEWORK_ORDER, runners_by_name
from repro.frameworks.tflite import (
    TfLiteCpuRunner,
    TfLiteGpuRunner,
    TfLiteQuantizedCpuRunner,
)
from repro.gpusim.device import snapdragon_820, snapdragon_855
from repro.models import get_model_config


@pytest.fixture(scope="module")
def device():
    return snapdragon_855()


@pytest.fixture(scope="module")
def yolo():
    return get_model_config("YOLOv2 Tiny")


@pytest.fixture(scope="module")
def alexnet():
    return get_model_config("AlexNet")


@pytest.fixture(scope="module")
def vgg16():
    return get_model_config("VGG16")


class TestRegistry:
    def test_all_runners_in_table_order(self, device):
        runners = all_runners(device)
        assert [r.name for r in runners] == list(FRAMEWORK_ORDER)

    def test_get_runner_case_insensitive(self, device):
        assert isinstance(get_runner("phonebit", device), PhoneBitRunner)
        with pytest.raises(KeyError):
            get_runner("NCNN", device)

    def test_runners_by_name(self, device):
        mapping = runners_by_name(device)
        assert set(mapping) == set(FRAMEWORK_ORDER)


class TestFailureModes:
    def test_cnndroid_oom_on_vgg16(self, device, vgg16):
        for cls in (CnnDroidCpuRunner, CnnDroidGpuRunner):
            result = cls(device).run_model(vgg16)
            assert result.status == RunStatus.OOM
            assert result.runtime_ms is None
            assert "heap" in result.reason

    def test_cnndroid_oom_independent_of_ram(self, vgg16):
        """The paper reports OOM on both the 3 GB and the 8 GB phone."""
        for device in (snapdragon_820(), snapdragon_855()):
            assert CnnDroidGpuRunner(device).run_model(vgg16).status == RunStatus.OOM

    def test_cnndroid_runs_alexnet_and_yolo(self, device, alexnet, yolo):
        for config in (alexnet, yolo):
            assert CnnDroidGpuRunner(device).run_model(config).succeeded

    def test_tflite_gpu_crashes_on_large_dense_layers(self, device, alexnet, vgg16):
        for config in (alexnet, vgg16):
            result = TfLiteGpuRunner(device).run_model(config)
            assert result.status == RunStatus.CRASH
            assert "dense" in result.reason

    def test_tflite_gpu_runs_yolo(self, device, yolo):
        assert TfLiteGpuRunner(device).run_model(yolo).succeeded

    def test_result_cell_formatting(self, device, yolo, vgg16):
        ok = PhoneBitRunner(device).run_model(yolo)
        oom = CnnDroidGpuRunner(device).run_model(vgg16)
        assert ok.cell().replace(".", "").isdigit()
        assert oom.cell() == "OOM"


class TestRelativePerformance:
    def test_phonebit_is_fastest_on_every_model(self, device):
        for model in ("AlexNet", "YOLOv2 Tiny", "VGG16"):
            config = get_model_config(model)
            results = {r.name: r.run_model(config) for r in all_runners(device)}
            phonebit_ms = results["PhoneBit"].runtime_ms
            for name, result in results.items():
                if name == "PhoneBit" or not result.succeeded:
                    continue
                assert result.runtime_ms > phonebit_ms, (model, name)

    def test_cnndroid_cpu_is_slowest(self, device, yolo):
        results = {r.name: r.run_model(yolo) for r in all_runners(device)}
        slowest = max(
            (r for r in results.values() if r.succeeded), key=lambda r: r.runtime_ms
        )
        assert slowest.framework == "CNNdroid CPU"

    def test_quantization_beats_float_cpu(self, device, yolo):
        cpu = TfLiteCpuRunner(device).run_model(yolo)
        quant = TfLiteQuantizedCpuRunner(device).run_model(yolo)
        assert quant.runtime_ms < cpu.runtime_ms

    def test_newer_soc_is_faster(self, yolo):
        for name in FRAMEWORK_ORDER:
            old = get_runner(name, snapdragon_820()).run_model(yolo)
            new = get_runner(name, snapdragon_855()).run_model(yolo)
            if old.succeeded and new.succeeded:
                assert new.runtime_ms < old.runtime_ms, name

    def test_phonebit_speedup_over_cnndroid_gpu_is_tens_of_x(self, device, yolo):
        phonebit = PhoneBitRunner(device).run_model(yolo)
        cnndroid = CnnDroidGpuRunner(device).run_model(yolo)
        speedup = cnndroid.runtime_ms / phonebit.runtime_ms
        assert 10 < speedup < 200

    def test_phonebit_speedup_over_tflite_is_around_10x(self, device, yolo):
        phonebit = PhoneBitRunner(device).run_model(yolo)
        tflite_cpu = TfLiteCpuRunner(device).run_model(yolo)
        tflite_gpu = TfLiteGpuRunner(device).run_model(yolo)
        assert 3 < tflite_cpu.runtime_ms / phonebit.runtime_ms < 40
        assert 5 < tflite_gpu.runtime_ms / phonebit.runtime_ms < 60

    def test_layer_times_cover_conv_layers(self, device, yolo):
        result = PhoneBitRunner(device).run_model(yolo)
        for index in range(1, 10):
            assert f"conv{index}" in result.layer_times_ms


class TestPhoneBitRunnerOptions:
    def test_unfused_slower_than_fused(self, device, yolo):
        fused = PhoneBitRunner(device, fused=True).run_model(yolo)
        unfused = PhoneBitRunner(device, fused=False).run_model(yolo)
        assert unfused.runtime_ms > fused.runtime_ms

    def test_narrow_packing_slower(self, device, yolo):
        wide = PhoneBitRunner(device, word_size=64).run_model(yolo)
        narrow = PhoneBitRunner(device, word_size=8).run_model(yolo)
        assert narrow.runtime_ms > wide.runtime_ms

    def test_workloads_skip_flatten(self, device, alexnet):
        workloads = PhoneBitRunner(device).model_workloads(alexnet)
        assert all(w.layer_type != "flatten" for w in workloads)
        assert any(w.layer_type == "binary_dense" for w in workloads)
