"""Tests for the convolution layers (fused binary, bit-plane input, float)."""

import numpy as np
import pytest

from repro.core import binary_conv, bitpack
from repro.core.branchless import branchless_binarize
from repro.core.fusion import compute_threshold
from repro.core.layers import BinaryConv2d, FloatConv2d, InputConv2d
from repro.core.tensor import Layout, Tensor


def _unpack(tensor: Tensor) -> np.ndarray:
    return bitpack.unpack_bits(tensor.data, tensor.true_channels, axis=-1)


class TestInputConv2d:
    def test_output_matches_manual_pipeline(self, rng, random_batchnorm):
        bn = random_batchnorm(6, seed=2)
        layer = InputConv2d(3, 6, 3, padding=1, batchnorm=bn, rng=5, name="conv1")
        image = rng.integers(0, 256, size=(2, 8, 8, 3)).astype(np.uint8)
        out = layer.forward(Tensor(image, Layout.NHWC))
        assert out.packed and out.true_channels == 6

        x1 = binary_conv.input_conv2d_reference(image, layer.weight_bits, 3, padding=1)
        expected_bits = branchless_binarize(x1, compute_threshold(bn), bn.gamma)
        np.testing.assert_array_equal(_unpack(out), expected_bits)

    def test_rejects_float_input(self, rng):
        layer = InputConv2d(3, 4, 3, rng=0)
        with pytest.raises(ValueError):
            layer.forward(Tensor(rng.normal(size=(1, 8, 8, 3)).astype(np.float32)))

    def test_rejects_packed_input(self):
        layer = InputConv2d(3, 4, 3, rng=0)
        packed = Tensor(np.zeros((1, 8, 8, 1), dtype=np.uint64), packed=True,
                        true_channels=3)
        with pytest.raises(ValueError):
            layer.forward(packed)

    def test_output_shape(self):
        layer = InputConv2d(3, 96, 11, stride=4, rng=0)
        assert layer.output_shape((227, 227, 3)) == (55, 55, 96)

    def test_param_count(self):
        layer = InputConv2d(3, 16, 3, rng=0)
        count = layer.param_count()
        assert count.binary == 3 * 3 * 3 * 16 + 16
        assert count.float32 == 16


class TestBinaryConv2d:
    def test_output_matches_manual_pipeline(self, rng, random_batchnorm):
        bn = random_batchnorm(10, seed=4)
        layer = BinaryConv2d(16, 10, 3, padding=1, batchnorm=bn, rng=6)
        bits = rng.integers(0, 2, size=(2, 6, 6, 16), dtype=np.uint8)
        packed = binary_conv.pack_activations(bits)
        out = layer.forward(Tensor(packed, packed=True, true_channels=16))

        x1 = binary_conv.binary_conv2d_reference(bits, layer.weight_bits, 3, padding=1)
        expected = branchless_binarize(x1, compute_threshold(bn), bn.gamma)
        np.testing.assert_array_equal(_unpack(out), expected)

    def test_accepts_unpacked_float_input(self, rng):
        layer = BinaryConv2d(8, 4, 3, padding=1, rng=3)
        values = rng.normal(size=(1, 5, 5, 8)).astype(np.float32)
        out_from_float = layer.forward(Tensor(values))
        bits = (values >= 0).astype(np.uint8)
        out_from_packed = layer.forward(
            Tensor(binary_conv.pack_activations(bits), packed=True, true_channels=8)
        )
        np.testing.assert_array_equal(out_from_float.data, out_from_packed.data)

    def test_output_binary_false_returns_float_bn_output(self, rng, random_batchnorm):
        bn = random_batchnorm(5, seed=8)
        layer = BinaryConv2d(8, 5, 3, padding=1, batchnorm=bn, rng=9,
                             output_binary=False)
        bits = rng.integers(0, 2, size=(1, 4, 4, 8), dtype=np.uint8)
        out = layer.forward(Tensor(binary_conv.pack_activations(bits),
                                   packed=True, true_channels=8))
        assert not out.packed and out.dtype == np.float32
        x1 = binary_conv.binary_conv2d_reference(bits, layer.weight_bits, 3, padding=1)
        expected = bn.gamma * (x1 - bn.mean) / bn.sigma + bn.beta
        np.testing.assert_allclose(out.data, expected, rtol=1e-5, atol=1e-4)

    def test_channel_mismatch_rejected(self, rng):
        layer = BinaryConv2d(16, 4, 3, rng=0)
        bits = rng.integers(0, 2, size=(1, 5, 5, 8), dtype=np.uint8)
        with pytest.raises(ValueError):
            layer.forward(Tensor(binary_conv.pack_activations(bits),
                                 packed=True, true_channels=8))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            BinaryConv2d(0, 4, 3)
        with pytest.raises(ValueError):
            BinaryConv2d(4, 4, 3, stride=0)
        with pytest.raises(ValueError):
            BinaryConv2d(4, 4, 3, padding=-1)

    def test_wrong_weight_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            BinaryConv2d(4, 4, 3, weight_bits=rng.integers(0, 2, size=(3, 3, 4, 5)))

    def test_workload_rule_flag(self):
        assert BinaryConv2d(64, 64, 3, rng=0).uses_integrated_packing
        assert not BinaryConv2d(512, 64, 3, rng=0).uses_integrated_packing

    def test_output_shape_validates_channels(self):
        layer = BinaryConv2d(16, 8, 3, padding=1)
        with pytest.raises(ValueError):
            layer.output_shape((8, 8, 32))


class TestFloatConv2d:
    def test_matches_reference_conv(self, rng):
        layer = FloatConv2d(4, 6, 3, padding=1, rng=2)
        x = rng.normal(size=(2, 5, 5, 4)).astype(np.float32)
        out = layer.forward(Tensor(x))
        expected = binary_conv.conv2d_float_nhwc(x, layer.weights, padding=1,
                                                 bias=layer.bias)
        np.testing.assert_allclose(out.data, expected, rtol=1e-5, atol=1e-5)

    def test_relu_activation(self, rng):
        layer = FloatConv2d(2, 3, 1, activation="relu", rng=4)
        out = layer.forward(Tensor(rng.normal(size=(1, 4, 4, 2)).astype(np.float32)))
        assert out.data.min() >= 0.0

    def test_leaky_relu_activation(self, rng):
        layer = FloatConv2d(2, 3, 1, activation="leaky_relu", rng=4)
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        out = layer.forward(Tensor(x))
        raw = binary_conv.conv2d_float_nhwc(x, layer.weights, bias=layer.bias)
        np.testing.assert_allclose(out.data, np.where(raw > 0, raw, 0.1 * raw),
                                   rtol=1e-5, atol=1e-5)

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            FloatConv2d(2, 2, 1, activation="gelu")

    def test_rejects_packed_input(self):
        layer = FloatConv2d(2, 2, 1, rng=0)
        with pytest.raises(ValueError):
            layer.forward(Tensor(np.zeros((1, 2, 2, 1), dtype=np.uint64),
                                 packed=True, true_channels=2))

    def test_param_count_counts_float_weights(self):
        layer = FloatConv2d(4, 8, 3, rng=0)
        assert layer.param_count().float32 == 3 * 3 * 4 * 8 + 8
