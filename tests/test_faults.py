"""Fault-injection plane, end-to-end deadlines, retry/hedging and
slow-worker quarantine.

The unit layers pin the deterministic contracts (a plan's schedule and
frame-decision sequence are pure functions of the seed; quarantine and
probation are pure functions of the recorded health events).  The cluster
layers then inject real faults — stalls, dropped frames, expired
deadlines, link flaps, wall-clock jumps — and assert the robustness
invariants: admitted work always resolves, slots never leak, and every
completed output stays bit-identical to the fault-free baseline.
"""

import time

import numpy as np
import pytest

from repro.serving import (
    ClusterService,
    DeadlineExceededError,
    FaultPlan,
    FaultRule,
    LeastOutstandingRouter,
    QuarantinePolicy,
    RetryPolicy,
    WorkerCrashError,
    parse_chaos_spec,
    run_chaos_scenario,
)
from repro.serving.loadgen import run_closed_loop, synthetic_images

WAIT_S = 60.0


def make_cluster(**kwargs):
    kwargs.setdefault("models", ("MicroCNN",))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("max_batch_size", 16)
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    kwargs.setdefault("heartbeat_timeout_s", 5.0)
    return ClusterService(**kwargs)


# --------------------------------------------------------------------------
# Plan determinism and the chaos spec grammar
# --------------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.from_seed(7, "crash,stall*2,partition,delay")
        b = FaultPlan.from_seed(7, "crash,stall*2,partition,delay")
        assert a.schedule() == b.schedule()

    def test_different_seed_different_schedule(self):
        spec = "crash,stall,delay"
        assert (FaultPlan.from_seed(1, spec).schedule()
                != FaultPlan.from_seed(2, spec).schedule())

    def test_spec_repeats_expand(self):
        plan = FaultPlan.from_seed(0, "stall*3,crash")
        kinds = sorted(r.kind for r in plan.rules)
        assert kinds == ["crash", "stall", "stall", "stall"]

    def test_unknown_fault_class_raises(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            FaultPlan.from_seed(0, "crash,meteor")

    def test_bad_repeat_counts_raise(self):
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, "stall*x")
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, "stall*0")
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, "")

    def test_parse_chaos_spec_seed_prefix(self):
        plan = parse_chaos_spec("7:crash,delay")
        assert plan.seed == 7
        assert sorted({r.kind for r in plan.rules}) == ["crash", "delay"]
        # A bare plan defaults to seed 0.
        assert parse_chaos_spec("crash").seed == 0

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind="gremlin")
        with pytest.raises(ValueError):
            FaultRule(kind="drop", direction="sideways")
        with pytest.raises(ValueError):
            FaultRule(kind="drop", probability=1.5)


# --------------------------------------------------------------------------
# Frame rules: seeded decisions at the injector level
# --------------------------------------------------------------------------
class TestFrameRules:
    def test_decision_sequence_is_a_pure_function_of_the_seed(self):
        plan = FaultPlan(
            [FaultRule(kind="drop", duration_s=100.0, probability=0.5)],
            seed=3,
        )
        seq = []
        for _ in range(2):
            injector = plan.injector()
            seq.append([len(injector.filter_send("w0", ("reqs", [])))
                        for _ in range(64)])
        assert seq[0] == seq[1]
        assert 0 in seq[0] and 1 in seq[0]  # some dropped, some delivered

    def test_drop_probability_one_drops_every_hot_frame(self):
        plan = FaultPlan(
            [FaultRule(kind="drop", duration_s=100.0, probability=1.0)])
        injector = plan.injector()
        assert injector.filter_send("w0", ("reqs", [])) == []
        assert injector.filter_inbound(("res", "w0", [])) == []

    def test_duplicate_rule_emits_two_deliveries(self):
        plan = FaultPlan(
            [FaultRule(kind="duplicate", duration_s=100.0, probability=1.0,
                       delay_s=0.02, direction="recv")])
        out = plan.injector().filter_inbound(("res", "w0", []))
        assert len(out) == 2
        assert out[1][0] == pytest.approx(0.02)

    def test_delay_rule_defers_delivery(self):
        plan = FaultPlan(
            [FaultRule(kind="delay", duration_s=100.0, probability=1.0,
                       delay_s=0.05)])
        ((delay, message),) = plan.injector().filter_send("w0", ("reqs", []))
        assert delay == pytest.approx(0.05)
        assert message == ("reqs", [])

    def test_control_traffic_is_spared(self):
        plan = FaultPlan(
            [FaultRule(kind="drop", duration_s=100.0, probability=1.0)])
        injector = plan.injector()
        # Heartbeats, readiness and reports are not hot-path frames.
        for message in (("hb", "w0", 1.0), ("ready", "w0"), ("report", {})):
            assert injector.filter_inbound(message) == [(0.0, message)]
        assert injector.filter_send("w0", ("stop",)) == [(0.0, ("stop",))]

    def test_stopped_injector_passes_everything_through(self):
        plan = FaultPlan(
            [FaultRule(kind="drop", duration_s=100.0, probability=1.0)])
        injector = plan.injector()
        injector.stop()
        message = ("reqs", [(0, "M", None)])
        assert injector.filter_send("w0", message) == [(0.0, message)]
        assert injector.filter_inbound(("res", "w0", [])) == [
            (0.0, ("res", "w0", []))]

    def test_injector_is_single_use(self):
        class Controller:
            def worker_ids(self):
                return []

            def kill(self, worker_id):
                pass

            def stall(self, worker_id, seconds):
                pass

        injector = FaultPlan([], seed=0).injector()
        injector.start(Controller())
        try:
            with pytest.raises(RuntimeError, match="single-use"):
                injector.start(Controller())
        finally:
            injector.stop()


# --------------------------------------------------------------------------
# Slow-worker quarantine (router health layer)
# --------------------------------------------------------------------------
class TestQuarantine:
    def make_router(self, workers=3, **policy):
        policy.setdefault("min_samples", 4)
        policy.setdefault("latency_factor", 2.0)
        policy.setdefault("probation_heartbeats", 3)
        router = LeastOutstandingRouter(
            quarantine=QuarantinePolicy(**policy))
        for i in range(workers):
            router.add_worker(f"w{i}")
        return router

    def feed(self, router, slow="w0", slow_s=0.5, fast_s=0.01, rounds=10):
        for _ in range(rounds):
            for worker in router.workers():
                router.record_completion(
                    worker, slow_s if worker == slow else fast_s)

    def test_slow_worker_is_ejected_from_eligibility(self):
        router = self.make_router()
        self.feed(router)
        assert router.quarantined_workers() == ["w0"]
        for _ in range(24):
            worker = router.acquire("M")
            assert worker != "w0"
            router.release(worker)

    def test_probation_readmits_after_clean_heartbeats(self):
        router = self.make_router(probation_heartbeats=3)
        self.feed(router)
        assert "w0" in router.quarantined_workers()
        for _ in range(2):
            router.record_clean_heartbeat("w0")
        assert "w0" in router.quarantined_workers()  # probation not served
        router.record_clean_heartbeat("w0")
        assert router.quarantined_workers() == []
        # w0 is routable again: drain the fleet and it must be offered.
        seen = set()
        held = []
        for _ in range(6):
            worker = router.acquire("M")
            seen.add(worker)
            held.append(worker)
        assert "w0" in seen
        for worker in held:
            router.release(worker)

    def test_consecutive_failures_quarantine(self):
        router = self.make_router()
        for _ in range(3):  # max_consecutive_failures default
            router.record_failure("w1")
        assert "w1" in router.quarantined_workers()

    def test_completion_resets_the_failure_streak(self):
        router = self.make_router()
        for _ in range(2):
            router.record_failure("w1")
        router.record_completion("w1", 0.01)
        router.record_failure("w1")  # streak restarted: 1 of 3
        assert "w1" not in router.quarantined_workers()

    def test_quarantine_never_empties_the_candidate_set(self):
        router = self.make_router(workers=2)
        for worker in ("w0", "w1"):
            for _ in range(3):
                router.record_failure(worker)
        assert sorted(router.quarantined_workers()) == ["w0", "w1"]
        # Routing falls back to the full candidate set rather than
        # shedding everything.
        assert router.acquire("M") is not None

    def test_fresh_incarnation_starts_healthy(self):
        router = self.make_router()
        self.feed(router)
        assert "w0" in router.quarantined_workers()
        router.remove_worker("w0")
        router.add_worker("w0")
        assert "w0" not in router.quarantined_workers()


# --------------------------------------------------------------------------
# End-to-end deadlines
# --------------------------------------------------------------------------
class TestDeadlines:
    def test_expired_before_dispatch_is_dropped_unexecuted(self):
        with make_cluster(workers=1) as cluster:
            image = synthetic_images((8, 8, 3), 1, seed=0)[0]
            future = cluster.submit("MicroCNN", image, timeout=1e-9)
            with pytest.raises(DeadlineExceededError, match="dropped"):
                future.result(timeout=WAIT_S)
            assert cluster.cluster_report().deadline_expired == 1
            stats = cluster.router.stats()
            assert stats.outstanding == 0  # the slot came back
            # The cluster still serves.
            ok = cluster.submit("MicroCNN", image)
            assert ok.result(timeout=WAIT_S) is not None

    def test_deadline_while_blocked_on_admission_raises_synchronously(self):
        with make_cluster(workers=1, max_outstanding=1) as cluster:
            (worker,) = cluster._workers.values()
            worker.endpoint.send(("stall", 1.0))
            time.sleep(0.1)  # let the stall take hold
            image = synthetic_images((8, 8, 3), 1, seed=1)[0]
            blocker = cluster.submit("MicroCNN", image)
            t0 = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                cluster.submit("MicroCNN", image, timeout=0.2)
            assert time.perf_counter() - t0 < 5.0
            assert blocker.result(timeout=WAIT_S) is not None

    def test_deadline_while_dispatched_fails_future_and_frees_slot(self):
        with make_cluster(workers=1) as cluster:
            (worker,) = cluster._workers.values()
            worker.endpoint.send(("stall", 1.0))
            time.sleep(0.1)
            image = synthetic_images((8, 8, 3), 1, seed=2)[0]
            future = cluster.submit("MicroCNN", image, timeout=0.3)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=WAIT_S)
            assert cluster.cluster_report().deadline_expired == 1
            deadline = time.time() + WAIT_S
            while time.time() < deadline:
                if cluster.router.stats().outstanding == 0:
                    break
                time.sleep(0.05)
            assert cluster.router.stats().outstanding == 0

    def test_deadline_error_is_a_timeout(self):
        assert issubclass(DeadlineExceededError, TimeoutError)


# --------------------------------------------------------------------------
# Retry and hedging
# --------------------------------------------------------------------------
class TestRetryAndHedging:
    def test_retry_rescues_requests_from_a_stalled_worker(self):
        retry = RetryPolicy(max_attempts=3, min_timeout_s=0.05,
                            max_timeout_s=0.3, min_samples=10**6)
        with make_cluster(workers=2, retry=retry) as cluster:
            images = synthetic_images((8, 8, 3), 12, seed=3)
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            victim = next(iter(cluster._workers.values()))
            victim.endpoint.send(("stall", 2.0))
            time.sleep(0.1)
            futures = [cluster.submit("MicroCNN", img) for img in images]
            outputs = np.stack([f.result(timeout=WAIT_S) for f in futures])
            assert np.array_equal(outputs, base.outputs)
            detail = cluster.cluster_report()
            assert detail.retries >= 1

    def test_hedge_duplicates_to_a_second_worker(self):
        retry = RetryPolicy(max_attempts=2, min_timeout_s=0.05,
                            max_timeout_s=30.0, timeout_factor=10**6,
                            hedge=True, hedge_factor=1e-6, min_samples=1)
        with make_cluster(workers=2, retry=retry) as cluster:
            images = synthetic_images((8, 8, 3), 12, seed=4)
            # Warm the latency tracker so the hedge delay is defined.
            for future in cluster.submit_batch("MicroCNN", images[:4]):
                future.result(timeout=WAIT_S)
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            victim = next(iter(cluster._workers.values()))
            victim.endpoint.send(("stall", 2.0))
            time.sleep(0.1)
            futures = [cluster.submit("MicroCNN", img) for img in images]
            outputs = np.stack([f.result(timeout=WAIT_S) for f in futures])
            assert np.array_equal(outputs, base.outputs)
            assert cluster.cluster_report().hedges >= 1

    def test_exhausted_retry_budget_fails_terminally_not_hangs(self):
        # Every hot-path frame in both directions is lost for good: no
        # retry can land, so the request must fail — never hang.
        plan = FaultPlan(
            [FaultRule(kind="drop", duration_s=600.0, probability=1.0)])
        retry = RetryPolicy(max_attempts=2, min_timeout_s=0.05,
                            max_timeout_s=0.1, min_samples=10**6)
        with make_cluster(workers=2, retry=retry, faults=plan) as cluster:
            image = synthetic_images((8, 8, 3), 1, seed=5)[0]
            future = cluster.submit("MicroCNN", image)
            with pytest.raises(WorkerCrashError, match="retry budget"):
                future.result(timeout=WAIT_S)
            deadline = time.time() + WAIT_S
            while time.time() < deadline:
                if cluster.router.stats().outstanding == 0:
                    break
                time.sleep(0.05)
            stats = cluster.router.stats()
            assert stats.outstanding == 0  # every attempt's slot came back
            assert stats.dispatched == stats.completed


# --------------------------------------------------------------------------
# Monotonic heartbeats: wall-clock jumps must not kill workers
# --------------------------------------------------------------------------
class TestClockJumps:
    def test_wall_clock_jump_does_not_respawn_workers(self, monkeypatch):
        """NTP step / DST change: ``time.time`` leaps hours mid-run.

        Worker liveness is judged on monotonic receipt times, so neither
        a forward nor a backward wall-clock jump may read as "every
        heartbeat is stale" (the pre-fix failure: a +1h step killed the
        whole fleet at once).
        """
        offset = [0.0]
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + offset[0])
        with make_cluster(workers=2, heartbeat_interval_s=0.05,
                          heartbeat_timeout_s=0.5) as cluster:
            images = synthetic_images((8, 8, 3), 8, seed=6)
            for jump in (3600.0, -7200.0):
                offset[0] = jump
                for future in cluster.submit_batch("MicroCNN", images):
                    future.result(timeout=WAIT_S)
                # Sit through several heartbeat windows under the jumped
                # clock: supervision must keep seeing live workers.
                time.sleep(0.6)
            detail = cluster.cluster_report()
            assert detail.respawns == 0
            assert detail.workers == 2


# --------------------------------------------------------------------------
# Reconnect storm: flapping links must not leak
# --------------------------------------------------------------------------
class TestReconnectStorm:
    def test_flapping_socket_worker_leaks_nothing(self):
        with make_cluster(transport="tcp", workers=2,
                          heartbeat_timeout_s=5.0) as cluster:
            images = synthetic_images((8, 8, 3), 8, seed=7)
            for _ in range(3):
                futures = [cluster.submit("MicroCNN", img) for img in images]
                victim = next(iter(cluster._workers.values()))
                victim.endpoint.channel.close()  # link blip, process alive
                for future in futures:
                    assert future.result(timeout=WAIT_S) is not None
                deadline = time.time() + WAIT_S
                while time.time() < deadline:
                    with cluster._lock:
                        ready = sum(1 for w in cluster._workers.values()
                                    if w.ready)
                        rejoining = len(cluster._rejoin_pending)
                    if ready >= 2 and rejoining == 0:
                        break
                    time.sleep(0.05)
            with cluster._lock:
                assert len(cluster._workers) == 2
                assert cluster._rejoin_pending == {}
                assert cluster._spawn_pending == {}
                assert cluster._stale_holders == {}
                assert cluster._pending == {}
            assert len(cluster.router.workers()) == 2
            stats = cluster.router.stats()
            assert stats.outstanding == 0
            assert stats.dispatched == stats.completed


# --------------------------------------------------------------------------
# The seeded end-to-end chaos run
# --------------------------------------------------------------------------
class TestChaosScenario:
    SPEC = "crash,stall,partition,delay"

    def test_chaos_run_is_lossless_and_bit_identical(self):
        plan = FaultPlan.from_seed(42, self.SPEC, horizon_s=1.0)
        result = run_chaos_scenario(
            plan, workers=3, requests=96, offered_rps=150.0, seed=42,
            heartbeat_interval_s=0.1, heartbeat_timeout_s=1.0,
        )
        # Every offered request resolved into exactly one bucket — a hung
        # future would have raised inside the scenario runner.
        assert result.offered == 96
        assert (result.completed + result.shed + result.deadline_expired
                + result.failed) == 96
        assert result.failed == 0
        assert result.bit_identical
        assert len(result.fault_events) >= 1
        # The same seed reproduces the same fault schedule.
        replay = FaultPlan.from_seed(42, self.SPEC, horizon_s=1.0)
        assert tuple(replay.schedule()) == result.schedule

    def test_chaos_run_with_deadlines_accounts_every_request(self):
        plan = FaultPlan.from_seed(11, "stall,delay", horizon_s=0.5)
        result = run_chaos_scenario(
            plan, workers=2, requests=48, offered_rps=150.0, seed=11,
            deadline_s=5.0,
            heartbeat_interval_s=0.1, heartbeat_timeout_s=1.0,
        )
        assert result.offered == 48
        assert (result.completed + result.shed + result.deadline_expired
                + result.failed) == 48
        assert result.bit_identical  # whatever completed is bit-exact

    def test_fault_free_control_run(self):
        result = run_chaos_scenario(
            None, workers=2, requests=24, offered_rps=200.0, seed=1,
        )
        assert result.completed == 24
        assert result.fault_events == ()
        assert result.schedule == ()
        assert result.bit_identical
        assert "Chaos scenario" in result.table()
