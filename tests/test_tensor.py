"""Tests for tensor layout utilities."""

import numpy as np
import pytest

from repro.core.tensor import (
    Layout,
    Tensor,
    conv_output_size,
    convert_layout,
    nchw_to_nhwc,
    nhwc_to_nchw,
    pad_spatial_nhwc,
)


class TestLayout:
    def test_channel_axis(self):
        assert Layout.NHWC.channel_axis == 3
        assert Layout.NCHW.channel_axis == 1

    def test_roundtrip_conversion(self, rng):
        nchw = rng.normal(size=(2, 3, 4, 5))
        nhwc = nchw_to_nhwc(nchw)
        assert nhwc.shape == (2, 4, 5, 3)
        np.testing.assert_array_equal(nhwc_to_nchw(nhwc), nchw)

    def test_convert_layout_identity(self, rng):
        x = rng.normal(size=(1, 2, 3, 4))
        assert convert_layout(x, Layout.NHWC, Layout.NHWC) is x

    def test_convert_layout_between(self, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        converted = convert_layout(x, Layout.NCHW, Layout.NHWC)
        assert converted.shape == (1, 8, 8, 3)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            nchw_to_nhwc(np.zeros((2, 3)))


class TestTensor:
    def test_basic_properties(self, rng):
        data = rng.normal(size=(2, 4, 4, 8)).astype(np.float32)
        tensor = Tensor(data)
        assert tensor.shape == (2, 4, 4, 8)
        assert tensor.channels == 8
        assert tensor.nbytes == data.nbytes
        assert tensor.numpy() is tensor.data

    def test_packed_requires_true_channels(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((1, 2, 2, 1), dtype=np.uint64), packed=True)

    def test_packed_channels_reports_unpadded(self):
        tensor = Tensor(np.zeros((1, 2, 2, 1), dtype=np.uint64), packed=True,
                        true_channels=37)
        assert tensor.channels == 37

    def test_to_layout(self, rng):
        data = rng.normal(size=(1, 4, 5, 3))
        converted = Tensor(data, Layout.NHWC).to_layout(Layout.NCHW)
        assert converted.layout is Layout.NCHW
        assert converted.shape == (1, 3, 4, 5)


class TestGeometryHelpers:
    def test_pad_spatial(self):
        x = np.ones((1, 2, 2, 1))
        padded = pad_spatial_nhwc(x, 1, value=-1)
        assert padded.shape == (1, 4, 4, 1)
        assert padded[0, 0, 0, 0] == -1
        assert padded[0, 1, 1, 0] == 1

    def test_pad_zero_is_identity(self):
        x = np.ones((1, 2, 2, 1))
        assert pad_spatial_nhwc(x, 0) is x

    def test_pad_negative_rejected(self):
        with pytest.raises(ValueError):
            pad_spatial_nhwc(np.ones((1, 2, 2, 1)), -1)

    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(32, 3, 1, 1, 32), (32, 3, 2, 1, 16), (227, 11, 4, 0, 55), (13, 3, 1, 1, 13)],
    )
    def test_conv_output_size(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected

    def test_conv_output_size_rejects_too_small(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)
