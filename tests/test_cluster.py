"""Tests for the sharded serving cluster: shm store, router, ClusterService."""

import multiprocessing
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.model_format import (
    load_network_from_buffer,
    serialize_network,
)
from repro.models.zoo import build_phonebit_network, micro_cnn_config
from repro.serving import (
    ClusterOverloadError,
    ClusterService,
    LeastOutstandingRouter,
    SharedModelStore,
    attach_model,
)
from repro.serving.loadgen import run_closed_loop, synthetic_images

#: Generous wall-clock bound for any single future in these tests.
WAIT_S = 60.0


def micro_network(rng=0):
    return build_phonebit_network(micro_cnn_config(), rng=rng)


# ---------------------------------------------------------------------------
# shared-memory model store
# ---------------------------------------------------------------------------

class TestSharedModelStore:
    def test_attach_is_zero_copy_and_read_only(self):
        network = micro_network()
        with SharedModelStore() as store:
            handle = store.publish(network)
            attached = attach_model(handle)
            for layer in attached.network.layers:
                packed = getattr(layer, "weights_packed", None)
                if packed is None:
                    continue
                assert not packed.flags.owndata  # view into the segment
                assert not packed.flags.writeable
            attached.close()

    def test_attached_outputs_bit_identical_to_copy_load(self):
        network = micro_network()
        raw = serialize_network(network)
        copied = load_network_from_buffer(raw)
        images = synthetic_images(network.input_shape, 4, seed=3)
        with SharedModelStore() as store:
            handle = store.publish(network)
            attached = attach_model(handle)
            out_shm = attached.network(images).data
            out_copy = copied(images).data
            assert np.array_equal(out_shm, out_copy)
            attached.close()

    def test_publish_twice_rejected(self):
        with SharedModelStore() as store:
            store.publish(micro_network(), name="m")
            with pytest.raises(ValueError):
                store.publish(micro_network(), name="m")

    def test_close_unlinks_segments(self):
        store = SharedModelStore()
        handle = store.publish(micro_network())
        store.close()
        with pytest.raises(FileNotFoundError):
            attach_model(handle)
        store.close()  # idempotent

    def test_attacher_death_does_not_unlink(self):
        """A crashed attacher must not tear the store down for survivors."""
        with SharedModelStore() as store:
            handle = store.publish(micro_network())

            def _attach_and_die(h):
                from repro.serving.shm_store import attach_model as attach

                attach(h)
                os._exit(1)  # hard death: no cleanup, no atexit

            ctx = multiprocessing.get_context()
            proc = ctx.Process(target=_attach_and_die, args=(handle,))
            proc.start()
            proc.join(timeout=WAIT_S)
            assert proc.exitcode == 1
            time.sleep(0.2)  # give any (wrong) tracker cleanup a chance
            attached = attach_model(handle)  # still there
            assert attached.network.name == "MicroCNN"
            attached.close()

    def test_owner_exit_without_close_reclaims_segments(self):
        """The GC finalizer unlinks segments when close() was never called."""
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.models.zoo import build_phonebit_network, micro_cnn_config\n"
            "from repro.serving.shm_store import SharedModelStore\n"
            "store = SharedModelStore()\n"
            "handle = store.publish(build_phonebit_network(micro_cnn_config()))\n"
            "print(handle.shm_name)\n"
            # no store.close(): interpreter teardown must reclaim
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            timeout=WAIT_S, cwd=os.path.dirname(os.path.dirname(__file__)),
        )
        assert result.returncode == 0, result.stderr
        shm_name = result.stdout.strip().splitlines()[-1]
        assert not os.path.exists(f"/dev/shm/{shm_name}")


# ---------------------------------------------------------------------------
# router
# ---------------------------------------------------------------------------

class TestLeastOutstandingRouter:
    def test_least_outstanding_wins(self):
        router = LeastOutstandingRouter(max_outstanding=8)
        router.add_worker("a")
        router.add_worker("b")
        first = router.acquire("m")
        assert router.acquire("m") != first  # 0 outstanding beats 1

    def test_consistent_tie_break_is_stable_per_model(self):
        router = LeastOutstandingRouter(max_outstanding=8)
        for worker in ("a", "b", "c"):
            router.add_worker(worker)
        picks = set()
        for _ in range(5):
            worker = router.acquire("model-x")
            picks.add(worker)
            router.release(worker)  # back to all-zero: pure tie-break
        assert len(picks) == 1  # same winner every time

    def test_admission_bound_sheds(self):
        router = LeastOutstandingRouter(max_outstanding=1)
        router.add_worker("a")
        assert router.acquire("m") == "a"
        assert router.acquire("m") is None
        assert router.stats().shed == 1
        assert router.acquire("m", force=True) == "a"  # requeue path ignores bound

    def test_release_for_removed_worker_is_noop(self):
        router = LeastOutstandingRouter(max_outstanding=2)
        router.add_worker("a")
        assert router.acquire("m") == "a"
        assert router.remove_worker("a") == 1
        router.release("a")  # must not crash or resurrect the worker
        assert router.workers() == []

    def test_retry_after_positive(self):
        router = LeastOutstandingRouter(max_outstanding=4)
        router.add_worker("a")
        assert router.retry_after_s(2.0) > 0


# ---------------------------------------------------------------------------
# cluster service
# ---------------------------------------------------------------------------

def make_cluster(**kwargs):
    kwargs.setdefault("models", ("MicroCNN",))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("max_batch_size", 16)
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    kwargs.setdefault("heartbeat_timeout_s", 5.0)
    return ClusterService(**kwargs)


class TestClusterService:
    def test_outputs_bit_identical_to_single_process_service(self):
        with make_cluster() as cluster:
            images = synthetic_images((8, 8, 3), 48, seed=0)
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            run = run_closed_loop(cluster, "MicroCNN", images)
            assert np.array_equal(run.outputs, base.outputs)
            report = run.report
            assert report.requests == images.shape[0]
            assert report.scheduler.completed == images.shape[0]

    def test_report_aggregates_all_workers(self):
        with make_cluster() as cluster:
            images = synthetic_images((8, 8, 3), 40, seed=1)
            for future in cluster.submit_batch("microcnn", images):
                future.result(timeout=WAIT_S)
            report = cluster.report("MicroCNN")
            assert report.requests == 40
            assert report.latency.count == 40
            detail = cluster.cluster_report()
            assert detail.workers == 2
            assert set(detail.worker_reports) == {"w0", "w1"}
            per_worker = sum(
                wr["MicroCNN"].requests for wr in detail.worker_reports.values()
                if "MicroCNN" in wr
            )
            assert per_worker == 40  # every request landed on some worker

    def test_worker_crash_respawns_and_requeues(self):
        with make_cluster(heartbeat_timeout_s=2.0) as cluster:
            images = synthetic_images((8, 8, 3), 32, seed=2)
            futures = [cluster.submit("MicroCNN", img) for img in images]
            victim = next(iter(cluster._workers.values()))
            os.kill(victim.pid, signal.SIGKILL)
            outputs = [f.result(timeout=WAIT_S) for f in futures]
            assert len(outputs) == 32
            detail = cluster.cluster_report()
            assert detail.respawns == 1
            assert detail.workers == 2  # replacement came up
            # Requeued work reran elsewhere: results still bit-identical.
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            assert np.array_equal(np.stack(outputs), base.outputs)

    def test_no_replacement_left_fails_futures_instead_of_hanging(self):
        """Orphaned requests must resolve even when every respawn dies too."""
        from repro.serving import WorkerCrashError

        with make_cluster(workers=1, max_respawns=1,
                          heartbeat_timeout_s=1.0) as cluster:
            images = synthetic_images((8, 8, 3), 16, seed=6)
            futures = [cluster.submit("MicroCNN", img) for img in images]
            first = next(iter(cluster._workers.values()))
            os.kill(first.pid, signal.SIGKILL)
            # Kill the replacement as soon as it exists — possibly before it
            # is ready, which is exactly the window where requeued work sits
            # parked waiting for it.
            deadline = time.time() + WAIT_S
            while time.time() < deadline:
                with cluster._lock:
                    replacement = next(
                        (w for w in cluster._workers.values()
                         if w.worker_id != first.worker_id), None)
                if replacement is not None:
                    replacement.endpoint.kill()
                    break
                time.sleep(0.005)
            # Every future must resolve — with a result (served before a
            # kill landed) or WorkerCrashError — never hang.
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=WAIT_S))
                except WorkerCrashError:
                    outcomes.append(None)
            assert len(outcomes) == 16

    def test_overload_sheds_with_retry_after(self):
        with make_cluster(workers=1, max_batch_size=2, max_outstanding=2,
                          max_wait_ms=50.0) as cluster:
            images = synthetic_images((8, 8, 3), 32, seed=3)
            shed = None
            accepted = []
            for img in images:
                try:
                    accepted.append(cluster.submit("MicroCNN", img, block=False))
                except ClusterOverloadError as exc:
                    shed = exc
                    break
            assert shed is not None, "tiny admission window must shed a burst"
            assert shed.retry_after_s > 0
            for future in accepted:
                future.result(timeout=WAIT_S)  # accepted work still completes

    def test_blocking_submit_applies_backpressure_not_errors(self):
        with make_cluster(workers=1, max_batch_size=4, max_outstanding=4) as cluster:
            images = synthetic_images((8, 8, 3), 64, seed=4)
            futures = cluster.submit_batch("MicroCNN", images)
            outputs = [f.result(timeout=WAIT_S) for f in futures]
            assert len(outputs) == 64

    def test_unknown_model_raises(self):
        with make_cluster(workers=1) as cluster:
            with pytest.raises(KeyError):
                cluster.submit("NoSuchNet", np.zeros((8, 8, 3), dtype=np.uint8))

    def test_submit_after_close_raises(self):
        cluster = make_cluster(workers=1)
        cluster.close()
        with pytest.raises(RuntimeError):
            cluster.submit("MicroCNN", np.zeros((8, 8, 3), dtype=np.uint8))
        cluster.close()  # idempotent

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_context_worker(self):
        with make_cluster(workers=1, mp_context="spawn",
                          startup_timeout_s=180.0) as cluster:
            image = synthetic_images((8, 8, 3), 1, seed=5)[0]
            out = cluster.infer("MicroCNN", image, timeout=WAIT_S)
            assert out.shape == (10,)
