"""End-to-end integration tests across the whole stack."""

import io

import numpy as np
import pytest

from repro.core import model_format
from repro.core.engine import PhoneBitEngine
from repro.core.layers import BinaryConv2d, InputConv2d
from repro.datasets import synthetic_image_batch
from repro.gpusim.device import snapdragon_820, snapdragon_855
from repro.gpusim.energy import EnergyModel
from repro.models import build_phonebit_network, yolov2_tiny_config


class TestSmallNetworkEndToEnd:
    def test_run_save_load_rerun(self, tiny_bnn_network, tiny_images):
        """forward → cost estimate → serialize → reload → identical forward."""
        engine = PhoneBitEngine(snapdragon_855())
        report = engine.run(tiny_bnn_network, tiny_images)
        assert report.latency_ms > 0

        buffer = io.BytesIO()
        model_format.save_network(tiny_bnn_network, buffer)
        buffer.seek(0)
        restored = model_format.load_network(buffer)
        report2 = engine.run(restored, tiny_images)
        np.testing.assert_allclose(report.output.data, report2.output.data,
                                   rtol=1e-4, atol=1e-3)
        assert report2.latency_ms == pytest.approx(report.latency_ms, rel=1e-6)

    def test_binary_pipeline_equals_float_simulation(self, rng, random_batchnorm):
        """The packed engine must agree with an all-float simulation of a BNN."""
        from repro.core import binary_conv
        from repro.core.branchless import branchless_binarize
        from repro.core.fusion import compute_threshold
        from repro.core.network import Network

        bn1 = random_batchnorm(8, seed=21)
        bn2 = random_batchnorm(12, seed=22)
        net = Network("two-conv", input_shape=(10, 10, 3), input_dtype="uint8")
        conv1 = InputConv2d(3, 8, 3, padding=1, batchnorm=bn1, rng=31, name="c1")
        conv2 = BinaryConv2d(8, 12, 3, padding=1, batchnorm=bn2, rng=32,
                             output_binary=False, name="c2")
        net.add(conv1)
        net.add(conv2)

        image = rng.integers(0, 256, size=(1, 10, 10, 3)).astype(np.uint8)
        packed_out = net.forward(image)

        # Float simulation of the same BNN.
        x1 = binary_conv.input_conv2d_reference(image, conv1.weight_bits, 3, padding=1)
        bits1 = branchless_binarize(x1, compute_threshold(bn1), bn1.gamma)
        x2 = binary_conv.binary_conv2d_reference(bits1, conv2.weight_bits, 3, padding=1)
        expected = bn2.gamma * (x2 - bn2.mean) / bn2.sigma + bn2.beta
        np.testing.assert_allclose(packed_out.data, expected, rtol=1e-4, atol=1e-3)


class TestFullSizeModelsCostOnly:
    def test_yolo_estimate_matches_runner(self):
        """Engine estimate on an instantiated YOLO agrees with the spec runner."""
        from repro.frameworks.phonebit_runner import PhoneBitRunner

        config = yolov2_tiny_config(input_size=128)
        network = build_phonebit_network(config, rng=0)
        engine_report = PhoneBitEngine(snapdragon_855()).estimate(network)

        runner = PhoneBitRunner(snapdragon_855())
        runner_result = runner.run_model(config)
        # Same kernels, same cost model: the two paths must agree closely.
        assert engine_report.latency_ms == pytest.approx(runner_result.runtime_ms,
                                                         rel=0.05)

    def test_reduced_yolo_functional_run(self):
        config = yolov2_tiny_config(input_size=64)
        network = build_phonebit_network(config, rng=0)
        image = synthetic_image_batch(batch_size=1, image_size=64, seed=2)
        engine = PhoneBitEngine(snapdragon_855())
        report = engine.run(network, image)
        assert report.output.shape == (1, 2, 2, 125)
        assert np.isfinite(report.output.data).all()

    def test_energy_consistent_with_runtime_across_devices(self):
        config = yolov2_tiny_config()
        from repro.frameworks.phonebit_runner import PhoneBitRunner

        for device in (snapdragon_820(), snapdragon_855()):
            result = PhoneBitRunner(device).run_model(config)
            report = EnergyModel(device).report(result.run_cost)
            assert report.runtime_ms == pytest.approx(result.runtime_ms)
            assert 50 < report.average_power_mw < 2000
