"""Tests for float-model → PhoneBit conversion."""

import numpy as np
import pytest

from repro.core.binarize import bits_to_values
from repro.core.converter import (
    ConversionReport,
    LayerSpec,
    binarize_weights,
    convert_model,
    convert_with_report,
)
from repro.core.fusion import BatchNormParams
from repro.core.layers import BinaryConv2d, Dense, FloatConv2d, InputConv2d
from repro.core.tensor import Tensor


def _bn(rng, channels):
    gamma = rng.uniform(0.3, 1.5, channels) * rng.choice([-1.0, 1.0], channels)
    return BatchNormParams(
        gamma=gamma,
        beta=rng.normal(size=channels),
        mean=rng.normal(size=channels),
        var=rng.uniform(0.2, 2.0, channels),
    )


class TestWeightBinarization:
    def test_sign_convention(self):
        weights = np.array([[-0.5, 0.0], [0.3, -2.0]])
        np.testing.assert_array_equal(binarize_weights(weights), [[0, 1], [1, 0]])


class TestConvertModel:
    def test_layer_classes(self, rng):
        specs = [
            LayerSpec("conv", weights=rng.normal(size=(3, 3, 3, 8)),
                      batchnorm=_bn(rng, 8), input_layer=True, padding=1),
            LayerSpec("maxpool", pool_size=2, pool_stride=2),
            LayerSpec("conv", weights=rng.normal(size=(3, 3, 8, 16)),
                      batchnorm=_bn(rng, 16), padding=1),
            LayerSpec("flatten"),
            LayerSpec("dense", weights=rng.normal(size=(4 * 4 * 16, 10)),
                      bias=rng.normal(size=10), binary=False),
        ]
        net = convert_model("converted", (8, 8, 3), specs)
        classes = [type(layer) for layer in net]
        assert classes[0] is InputConv2d
        assert classes[2] is BinaryConv2d
        assert classes[-1] is Dense

    def test_non_binary_conv_stays_float(self, rng):
        specs = [
            LayerSpec("conv", weights=rng.normal(size=(1, 1, 4, 6)), binary=False),
        ]
        net = convert_model("float-conv", (5, 5, 4), specs, input_dtype="float32")
        assert isinstance(net.layers[0], FloatConv2d)

    def test_binarized_conv_uses_sign_of_weights(self, rng):
        weights = rng.normal(size=(3, 3, 4, 6))
        specs = [LayerSpec("conv", weights=weights, input_layer=True, padding=1)]
        net = convert_model("signs", (6, 6, 4), specs)
        np.testing.assert_array_equal(net.layers[0].weight_bits, binarize_weights(weights))

    def test_converted_dense_matches_float_bnn_forward(self, rng):
        """Converted BinaryDense must equal sign(BN(x·sign(W))) computed in float."""
        in_features, out_features = 30, 12
        weights = rng.normal(size=(in_features, out_features))
        bn = _bn(rng, out_features)
        specs = [LayerSpec("dense", weights=weights, batchnorm=bn, binary=True)]
        net = convert_model("bdense", (in_features,), specs, input_dtype="float32")

        x_values = rng.choice([-1.0, 1.0], size=(5, in_features))
        out = net.forward(x_values.astype(np.float32))
        from repro.core import bitpack

        produced = bitpack.unpack_bits(out.data, out_features, axis=1)

        w_values = bits_to_values(binarize_weights(weights))
        x1 = x_values @ w_values
        normalized = bn.gamma * (x1 - bn.mean) / bn.sigma + bn.beta
        expected = (normalized >= 0).astype(np.uint8)
        np.testing.assert_array_equal(produced, expected)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            convert_model("bad", (4,), [LayerSpec("lstm")])

    def test_conv_weight_rank_checked(self, rng):
        with pytest.raises(ValueError):
            convert_model("bad", (4, 4, 2),
                          [LayerSpec("conv", weights=rng.normal(size=(3, 3, 2)))])

    def test_dense_weight_rank_checked(self, rng):
        with pytest.raises(ValueError):
            convert_model("bad", (4,), [LayerSpec("dense", weights=rng.normal(size=(4,)))])


class TestConversionReport:
    def test_report_counts_layers_and_sizes(self, rng):
        specs = [
            LayerSpec("conv", weights=rng.normal(size=(3, 3, 3, 8)),
                      batchnorm=_bn(rng, 8), input_layer=True, padding=1),
            LayerSpec("flatten"),
            LayerSpec("dense", weights=rng.normal(size=(8 * 8 * 8, 10)), binary=False),
        ]
        report = convert_with_report("reported", (8, 8, 3), specs)
        assert isinstance(report, ConversionReport)
        assert report.binary_layers == 1
        assert report.float_layers == 1
        assert report.compression_ratio > 1.0
        assert report.network.output_shape() == (10,)
