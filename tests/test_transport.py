"""Tests for the cluster transport layer: codec, channels, socket clusters.

The cross-host acceptance gate lives here: a ``ClusterService`` over
``SocketTransport`` (TCP loopback and UDS) must produce bit-identical
outputs to the single-process service over the same published bytes,
survive worker connection loss (reconnect + requeue, futures never hang),
and fetch model bytes through the digest-keyed per-host cache.
"""

import os
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.serving import ClusterService, SharedModelStore
from repro.serving.loadgen import run_closed_loop, synthetic_images
from repro.serving.shm_store import (
    HostModelCache,
    ShmModelHandle,
    artifact_digest,
    attach_model,
)
from repro.serving.transport import (
    Channel,
    TransportClosed,
    decode_message,
    encode_message,
    format_address,
    parse_address,
)

#: Generous wall-clock bound for any single future in these tests.
WAIT_S = 60.0


def roundtrip(message):
    frame = b"".join(encode_message(message))
    return decode_message(memoryview(frame)[4:])


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------

class TestCodec:
    def test_json_skeleton_roundtrip(self):
        assert roundtrip(("hb", "w3", 12.5)) == ("hb", "w3", 12.5)
        assert roundtrip(("stop",)) == ("stop",)

    def test_array_payload_exact(self):
        rng = np.random.default_rng(0)
        for dtype in (np.uint8, np.int32, np.float32, np.float64):
            arr = rng.integers(0, 200, size=(3, 5, 2)).astype(dtype)
            kind, worker, rid, back = roundtrip(("res", "w0", 9, arr))
            assert (kind, worker, rid) == ("res", "w0", 9)
            assert back.dtype == arr.dtype
            assert back.shape == arr.shape
            assert np.array_equal(back, arr)

    def test_hot_path_request_batch(self):
        images = np.arange(2 * 4 * 4 * 3, dtype=np.uint8).reshape(2, 4, 4, 3)
        message = ("reqs", [(0, "MicroCNN", images[0]),
                            (1, "MicroCNN", images[1])])
        kind, items = roundtrip(message)
        assert kind == "reqs"
        for index, (rid, model, image) in enumerate(items):
            assert (rid, model) == (index, "MicroCNN")
            assert np.array_equal(image, images[index])

    def test_noncontiguous_array_roundtrips(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
        assert not arr.flags.c_contiguous
        _, back = roundtrip(("res", arr))
        assert np.array_equal(back, arr)

    def test_pickle_fallback_for_dataclass_skeleton(self):
        from repro.serving.cluster import WorkerConfig

        config = WorkerConfig(max_batch_size=7, max_wait_ms=1.5)
        arr = np.ones((2, 2), dtype=np.float32)
        kind, wid, back_config, back_arr = roundtrip(
            ("welcome", "w1", config, arr))
        assert (kind, wid) == ("welcome", "w1")
        assert back_config == config
        assert np.array_equal(back_arr, arr)

    def test_hostile_pickle_skeleton_rejected(self):
        """The frame decoder must refuse classes outside the allowlist."""
        import pickle

        class Evil:
            def __reduce__(self):
                return (print, ("pwned",))

        frame = b"".join(encode_message(("reports", "w0", 1, Evil())))
        with pytest.raises(pickle.UnpicklingError):
            decode_message(memoryview(frame)[4:])
        # eval/getattr-style builtins gadgets are named explicitly out.
        for gadget in (eval, getattr, print):
            frame = b"".join(encode_message(("x", gadget)))
            with pytest.raises(pickle.UnpicklingError):
                decode_message(memoryview(frame)[4:])

    def test_real_service_report_roundtrips_through_allowlist(self):
        """The allowlist must still admit everything workers actually send."""
        from repro.core.engine import PhoneBitEngine
        from repro.serving.pool import ModelPool
        from repro.serving.service import InferenceService

        pool = ModelPool()
        service = InferenceService(pool=pool, engine=PhoneBitEngine(),
                                   max_batch_size=4, cache_capacity=8)
        try:
            images = synthetic_images((8, 8, 3), 6, seed=9)
            for future in service.submit_batch("MicroCNN", images):
                future.result(timeout=WAIT_S)
            reports = service.reports()
        finally:
            service.close()
        kind, wid, gen, back = roundtrip(("reports", "w0", 3, reports))
        assert (kind, wid, gen) == ("reports", "w0", 3)
        assert back["MicroCNN"].requests == reports["MicroCNN"].requests
        assert (back["MicroCNN"].scheduler.completed
                == reports["MicroCNN"].scheduler.completed)

    def test_decoded_arrays_do_not_copy(self):
        arr = np.zeros((64, 64), dtype=np.uint8)
        frame = b"".join(encode_message(("res", arr)))
        _, back = roundtrip(("res", arr))
        # np.frombuffer views the receive buffer instead of copying.
        assert not back.flags.owndata
        assert len(frame) < arr.nbytes + 256  # raw framing, no pickle blowup


class TestAddresses:
    def test_roundtrip(self):
        assert parse_address("tcp://10.0.0.1:9000") == ("tcp", ("10.0.0.1", 9000))
        assert parse_address("uds:///run/x.sock") == ("uds", "/run/x.sock")
        assert format_address("tcp", ("h", 1)) == "tcp://h:1"

    def test_invalid(self):
        for bad in ("tcp://nohost", "uds://", "http://x:1", "plain"):
            with pytest.raises(ValueError):
                parse_address(bad)


# ---------------------------------------------------------------------------
# channel
# ---------------------------------------------------------------------------

class TestChannel:
    def test_duplex_send_recv(self):
        left, right = socket.socketpair()
        a, b = Channel(left), Channel(right)
        try:
            image = np.arange(48, dtype=np.uint8).reshape(4, 4, 3)
            a.send(("reqs", [(0, "m", image)]))
            kind, items = b.recv()
            assert kind == "reqs" and np.array_equal(items[0][2], image)
            b.send(("res", "w0", 0, image.astype(np.float64)))
            kind, _, rid, row = a.recv()
            assert (kind, rid) == ("res", 0) and row.dtype == np.float64
        finally:
            a.close()
            b.close()

    def test_many_array_frame_exceeds_iov_max(self):
        """One frame with > UIO_MAXIOV buffers must still send (chunked)."""
        left, right = socket.socketpair()
        a, b = Channel(left), Channel(right)
        try:
            items = [(i, "m", np.full((4,), i % 251, dtype=np.uint8))
                     for i in range(1200)]
            done = []
            t = threading.Thread(target=lambda: (a.send(("reqs", items)),
                                                 done.append(True)))
            t.start()
            kind, back = b.recv()
            t.join(timeout=WAIT_S)
            assert done and kind == "reqs" and len(back) == 1200
            assert all(np.all(img == rid % 251) for rid, _, img in back)
        finally:
            a.close()
            b.close()

    def test_recv_raises_on_peer_close(self):
        left, right = socket.socketpair()
        a, b = Channel(left), Channel(right)
        a.close()
        with pytest.raises(TransportClosed):
            b.recv()
        b.close()

    def test_concurrent_sends_frame_cleanly(self):
        left, right = socket.socketpair()
        a, b = Channel(left), Channel(right)
        try:
            count = 40
            threads = [
                threading.Thread(target=lambda i=i: a.send(
                    ("res", "w0", i, np.full((16,), i, dtype=np.int32))))
                for i in range(count)
            ]
            for t in threads:
                t.start()
            seen = set()
            for _ in range(count):
                _, _, rid, row = b.recv()
                assert np.all(row == rid)  # interleaved frames would corrupt
                seen.add(rid)
            for t in threads:
                t.join()
            assert seen == set(range(count))
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# per-host digest cache
# ---------------------------------------------------------------------------

class TestHostModelCache:
    def _published(self, store):
        from repro.models.zoo import build_phonebit_network, micro_cnn_config

        return store.publish(build_phonebit_network(micro_cnn_config()))

    def test_owner_fast_path_no_fetch(self):
        with SharedModelStore() as store:
            handle = self._published(store)
            with HostModelCache() as cache:
                attached = cache.attach(
                    handle,
                    fetch=lambda: pytest.fail("co-hosted attach must not fetch"),
                )
                assert cache.attach_log[-1][1] == "owner-segment"
                attached.close()

    def test_fetch_once_per_host(self):
        """A 'remote' handle fetches once; co-hosted attaches hit the cache."""
        with SharedModelStore() as store:
            handle = self._published(store)
            raw = bytes(store.payload_view(handle.digest))
            remote = ShmModelHandle(model=handle.model, shm_name="",
                                    nbytes=handle.nbytes, digest=handle.digest)
            fetches = []

            def fetch():
                fetches.append(1)
                return raw

            with HostModelCache() as cache:
                first = cache.attach(remote, fetch=fetch)
                assert cache.attach_log[-1][1] == "fetched"
                # A second worker on the same host: fresh cache object,
                # same digest-named segment.
                with HostModelCache() as cache2:
                    second = cache2.attach(remote, fetch=fetch)
                    assert cache2.attach_log[-1][1] == "host-cache"
                    images = synthetic_images((8, 8, 3), 2, seed=1)
                    assert np.array_equal(first.network(images).data,
                                          second.network(images).data)
                    second.close()
                first.close()
            assert len(fetches) == 1

    def test_concurrent_fetch_ahead_one_round_trip_per_digest(self):
        """Two digests resolving simultaneously on one host (the rollout
        fetch-ahead shape: v1 still attaching on a late worker while v2's
        prepare lands) perform exactly one blob round trip *each*.

        The shm-create claim is the host-global lock: per digest, one
        racer fetches and every other attacher waits on its ready flag.
        A barrier inside the fetch path proves the two digests' round
        trips genuinely overlap rather than serializing.
        """
        from repro.models.zoo import build_phonebit_network, micro_cnn_config

        with SharedModelStore() as store:
            v1 = build_phonebit_network(micro_cnn_config())
            v1.metadata["release"] = "r1"
            v2 = build_phonebit_network(micro_cnn_config())
            v2.metadata["release"] = "r2"
            handles = [store.publish_version(v1), store.publish_version(v2)]
            assert handles[0].digest != handles[1].digest
            payloads = {
                h.digest: bytes(store.payload_view(h.digest))
                for h in handles
            }
            remotes = {
                h.digest: ShmModelHandle(model=h.model, shm_name="",
                                         nbytes=h.nbytes, digest=h.digest)
                for h in handles
            }
            fetch_lock = threading.Lock()
            fetches = {h.digest: 0 for h in handles}
            in_flight = threading.Barrier(2, timeout=WAIT_S)
            start = threading.Barrier(4, timeout=WAIT_S)
            results = {}
            errors = []
            caches = [HostModelCache() for _ in range(4)]

            def worker(slot, digest):
                try:
                    def fetch():
                        with fetch_lock:
                            fetches[digest] += 1
                        in_flight.wait()  # both digests fetching at once
                        return payloads[digest]

                    start.wait()
                    attached = caches[slot].attach(remotes[digest],
                                                   fetch=fetch)
                    try:
                        results[slot] = attached.network(
                            synthetic_images((8, 8, 3), 2, seed=7)).data
                    finally:
                        attached.close()
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append((slot, exc))

            threads = [
                threading.Thread(target=worker,
                                 args=(slot, handles[slot % 2].digest))
                for slot in range(4)
            ]
            try:
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=WAIT_S)
            finally:
                for cache in caches:
                    cache.close()
            assert not errors, errors
            # Exactly one transport round trip per digest, despite two
            # concurrent attachers each.
            assert fetches == {handles[0].digest: 1, handles[1].digest: 1}
            # Both attachers of each digest computed identical outputs.
            assert np.array_equal(results[0], results[2])
            assert np.array_equal(results[1], results[3])

    def test_fetch_digest_mismatch_rejected(self):
        with SharedModelStore() as store:
            handle = self._published(store)
            remote = ShmModelHandle(model=handle.model, shm_name="",
                                    nbytes=handle.nbytes, digest=handle.digest)
            with HostModelCache() as cache:
                with pytest.raises(ValueError):
                    cache.attach(remote, fetch=lambda: b"x" * handle.nbytes)

    def test_no_source_raises(self):
        handle = ShmModelHandle(model="m", shm_name="", nbytes=4,
                                digest=artifact_digest(b"none"))
        with HostModelCache() as cache:
            with pytest.raises(FileNotFoundError):
                cache.attach(handle, fetch=None)


# ---------------------------------------------------------------------------
# socket clusters (the cross-host path, on loopback)
# ---------------------------------------------------------------------------

def make_socket_cluster(transport, **kwargs):
    kwargs.setdefault("models", ("MicroCNN",))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("max_batch_size", 16)
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    kwargs.setdefault("heartbeat_timeout_s", 5.0)
    return ClusterService(transport=transport, **kwargs)


class TestSocketCluster:
    @pytest.mark.parametrize("transport", ["uds", "tcp"])
    def test_bit_identical_to_single_process(self, transport):
        with make_socket_cluster(transport) as cluster:
            images = synthetic_images((8, 8, 3), 48, seed=0)
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            run = run_closed_loop(cluster, "MicroCNN", images)
            assert np.array_equal(run.outputs, base.outputs)
            detail = cluster.cluster_report()
            assert detail.workers == 2
            served = sum(
                wr["MicroCNN"].requests for wr in detail.worker_reports.values()
                if "MicroCNN" in wr
            )
            assert served == images.shape[0]

    def test_forced_digest_fetch_bit_identical(self, monkeypatch):
        """Workers that cannot see the owner's segment fetch over the wire."""
        monkeypatch.setenv("REPRO_CLUSTER_FORCE_FETCH", "1")
        with make_socket_cluster("tcp", workers=2) as cluster:
            images = synthetic_images((8, 8, 3), 24, seed=2)
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            run = run_closed_loop(cluster, "MicroCNN", images)
            assert np.array_equal(run.outputs, base.outputs)

    def test_connection_loss_requeues_and_readmits(self):
        """Link death ≠ process death: requeue now, re-admit on reconnect."""
        with make_socket_cluster("tcp") as cluster:
            images = synthetic_images((8, 8, 3), 32, seed=3)
            futures = [cluster.submit("MicroCNN", img) for img in images]
            victim = next(iter(cluster._workers.values()))
            victim.endpoint.channel.close()  # sever the link only
            outputs = [f.result(timeout=WAIT_S) for f in futures]
            assert len(outputs) == 32
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            assert np.array_equal(np.stack(outputs), base.outputs)
            # The disconnected worker's process is alive and dials back in.
            deadline = time.time() + WAIT_S
            while time.time() < deadline:
                with cluster._lock:
                    ready = sum(1 for w in cluster._workers.values() if w.ready)
                if ready >= 2:
                    break
                time.sleep(0.05)
            assert ready >= 2
            assert cluster.cluster_report().respawns >= 1

    def test_worker_process_kill_respawns(self):
        """A dead worker process is respawned via the cluster-worker CLI."""
        with make_socket_cluster("uds", heartbeat_timeout_s=2.0) as cluster:
            images = synthetic_images((8, 8, 3), 24, seed=4)
            futures = [cluster.submit("MicroCNN", img) for img in images]
            victim = next(iter(cluster._workers.values()))
            victim.endpoint.process.kill()
            outputs = [f.result(timeout=WAIT_S) for f in futures]
            assert len(outputs) == 24
            deadline = time.time() + WAIT_S
            while time.time() < deadline:
                with cluster._lock:
                    ready = sum(1 for w in cluster._workers.values() if w.ready)
                if ready >= 2:
                    break
                time.sleep(0.05)
            assert ready >= 2

    def test_external_worker_registration(self, tmp_path):
        """The two-terminal topology: worker starts first, router later."""
        address = f"uds://{tmp_path}/router.sock"
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "cluster-worker",
             "--connect", address, "--retry-s", "60"],
            env=env,
        )
        try:
            cluster = ClusterService(
                models=("MicroCNN",), workers=0, expect_workers=1,
                transport="uds", bind=address, max_batch_size=16,
            )
            try:
                images = synthetic_images((8, 8, 3), 16, seed=5)
                baseline = cluster.baseline_service()
                try:
                    base = run_closed_loop(baseline, "MicroCNN", images)
                finally:
                    baseline.close()
                run = run_closed_loop(cluster, "MicroCNN", images)
                assert np.array_equal(run.outputs, base.outputs)
            finally:
                cluster.close()
            assert worker.wait(timeout=WAIT_S) == 0  # graceful stop → exit 0
        finally:
            if worker.poll() is None:
                worker.kill()

    def test_external_worker_link_loss_gets_reconnect_grace(self, tmp_path):
        """A lone external worker's link blip must not fail futures: work
        parks for reconnect_grace_s and the redialing worker serves it."""
        address = f"uds://{tmp_path}/grace.sock"
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "cluster-worker",
             "--connect", address, "--retry-s", "60"],
            env=env,
        )
        try:
            cluster = ClusterService(
                models=("MicroCNN",), workers=0, expect_workers=1,
                transport="uds", bind=address, max_batch_size=16,
                reconnect_grace_s=30.0,
            )
            try:
                images = synthetic_images((8, 8, 3), 16, seed=8)
                futures = [cluster.submit("MicroCNN", img) for img in images]
                victim = next(iter(cluster._workers.values()))
                victim.endpoint.channel.close()  # link blip, process alive
                outputs = [f.result(timeout=WAIT_S) for f in futures]
                assert len(outputs) == 16
                baseline = cluster.baseline_service()
                try:
                    base = run_closed_loop(baseline, "MicroCNN", images)
                finally:
                    baseline.close()
                assert np.array_equal(np.stack(outputs), base.outputs)
            finally:
                cluster.close()
            assert worker.wait(timeout=WAIT_S) == 0
        finally:
            if worker.poll() is None:
                worker.kill()

    def test_worker_cli_times_out_without_router(self):
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cluster-worker",
             "--connect", "tcp://127.0.0.1:9", "--retry-s", "0.2"],
            env=env, capture_output=True, text=True, timeout=WAIT_S,
        )
        assert result.returncode == 1
