"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import synthetic_cifar10, synthetic_image_batch, synthetic_voc_detection
from repro.datasets.detection import BoundingBox, iou


class TestSyntheticCifar10:
    def test_shapes_and_dtype(self):
        data = synthetic_cifar10(train_size=64, test_size=16, image_size=32)
        assert data.train_images.shape == (64, 32, 32, 3)
        assert data.test_images.shape == (16, 32, 32, 3)
        assert data.train_images.dtype == np.uint8
        assert data.image_shape == (32, 32, 3)
        assert data.num_classes == 10

    def test_deterministic_for_seed(self):
        a = synthetic_cifar10(train_size=16, test_size=8, image_size=16, seed=5)
        b = synthetic_cifar10(train_size=16, test_size=8, image_size=16, seed=5)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = synthetic_cifar10(train_size=16, test_size=8, image_size=16, seed=1)
        b = synthetic_cifar10(train_size=16, test_size=8, image_size=16, seed=2)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_labels_in_range(self):
        data = synthetic_cifar10(train_size=64, test_size=16, image_size=16)
        assert data.train_labels.min() >= 0
        assert data.train_labels.max() < 10

    def test_classes_are_visually_distinct(self):
        """Same-class images are more alike than different-class images."""
        data = synthetic_cifar10(train_size=256, test_size=16, image_size=16, noise=20)
        images = data.train_images.astype(np.float64)
        labels = data.train_labels
        class_means = np.stack([images[labels == c].mean(axis=0)
                                for c in range(10) if (labels == c).any()])
        spread_between = np.std(class_means, axis=0).mean()
        spread_within = np.mean([
            images[labels == c].std(axis=0).mean()
            for c in range(10) if (labels == c).sum() > 1
        ])
        assert spread_between > spread_within

    def test_batches_cover_dataset(self):
        data = synthetic_cifar10(train_size=50, test_size=8, image_size=16)
        total = sum(len(labels) for _, labels in data.batches(batch_size=16))
        assert total == 50

    def test_image_size_must_be_multiple_of_four(self):
        with pytest.raises(ValueError):
            synthetic_cifar10(image_size=30)

    def test_image_batch_shape(self):
        batch = synthetic_image_batch(batch_size=2, image_size=64)
        assert batch.shape == (2, 64, 64, 3)
        assert batch.dtype == np.uint8


class TestSyntheticDetection:
    def test_sample_structure(self):
        samples = synthetic_voc_detection(count=3, image_size=128, seed=1)
        assert len(samples) == 3
        for sample in samples:
            assert sample.image.shape == (128, 128, 3)
            assert sample.image.dtype == np.uint8
            assert 1 <= len(sample.boxes) <= 3
            for box in sample.boxes:
                assert 0 <= box.class_index < 20
                x0, y0, x1, y1 = box.corners(128)
                assert 0 <= x0 < x1 <= 128
                assert 0 <= y0 < y1 <= 128

    def test_boxes_are_painted_into_image(self):
        sample = synthetic_voc_detection(count=1, image_size=64, seed=3)[0]
        box = sample.boxes[0]
        x0, y0, x1, y1 = box.corners(64)
        patch = sample.image[y0:y1, x0:x1]
        assert patch.std(axis=(0, 1)).max() < 40  # solid-ish colour block

    def test_iou_identity_and_disjoint(self):
        a = BoundingBox(0, 0.5, 0.5, 0.2, 0.2)
        b = BoundingBox(0, 0.9, 0.9, 0.1, 0.1)
        assert iou(a, a) == pytest.approx(1.0)
        assert iou(a, b) == 0.0

    def test_iou_partial_overlap(self):
        a = BoundingBox(0, 0.5, 0.5, 0.4, 0.4)
        b = BoundingBox(0, 0.6, 0.5, 0.4, 0.4)
        assert 0.0 < iou(a, b) < 1.0
