"""Shared fixtures for the PhoneBit reproduction test-suite."""

import signal

import numpy as np
import pytest

from repro.core.fusion import BatchNormParams


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout_s(seconds): fail the test with TimeoutError if it runs "
        "longer than this wall-clock bound (SIGALRM-based; main thread "
        "only — a hung multi-process test dies loudly instead of "
        "stalling the whole suite)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout_s")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.args[0])

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its {seconds}s timeout_s bound")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng():
    """Deterministic RNG shared by tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def random_batchnorm():
    """Factory for random (but valid) batch-norm parameters."""

    def _make(channels: int, seed: int = 0) -> BatchNormParams:
        local = np.random.default_rng(seed)
        gamma = local.uniform(0.3, 1.5, size=channels)
        gamma *= local.choice([-1.0, 1.0], size=channels)
        return BatchNormParams(
            gamma=gamma,
            beta=local.normal(0.0, 0.7, size=channels),
            mean=local.normal(0.0, 3.0, size=channels),
            var=local.uniform(0.2, 4.0, size=channels),
        )

    return _make


@pytest.fixture
def tiny_bnn_network():
    """A small end-to-end PhoneBit network on 16×16 uint8 images."""
    from repro.core.layers import (
        BinaryConv2d,
        BinaryDense,
        Flatten,
        InputConv2d,
        MaxPool2d,
    )
    from repro.core.network import Network

    net = Network("tiny", input_shape=(16, 16, 3), input_dtype="uint8")
    net.add(InputConv2d(3, 16, 3, padding=1, rng=11, name="conv1"))
    net.add(MaxPool2d(2, name="pool1"))
    net.add(BinaryConv2d(16, 32, 3, padding=1, rng=12, name="conv2"))
    net.add(MaxPool2d(2, name="pool2"))
    net.add(Flatten(name="flatten"))
    net.add(BinaryDense(4 * 4 * 32, 64, rng=13, name="fc1"))
    net.add(BinaryDense(64, 10, output_binary=False, rng=14, name="fc2"))
    return net


@pytest.fixture
def tiny_images(rng):
    """A small batch of uint8 images matching ``tiny_bnn_network``."""
    return rng.integers(0, 256, size=(2, 16, 16, 3)).astype(np.uint8)
