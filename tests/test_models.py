"""Tests for the benchmark model configs and the model zoo builders."""

import numpy as np
import pytest

from repro.models import (
    BENCHMARK_MODELS,
    alexnet_config,
    build_float_network,
    build_phonebit_network,
    get_model_config,
    model_size_report,
    vgg16_config,
    yolov2_tiny_config,
)
from repro.models.config import LayerDef, ModelConfig


class TestConfigs:
    def test_registry_contains_paper_models(self):
        assert set(BENCHMARK_MODELS) == {"AlexNet", "YOLOv2 Tiny", "VGG16"}

    def test_lookup_is_case_insensitive(self):
        assert get_model_config("alexnet").name == "AlexNet"
        with pytest.raises(KeyError):
            get_model_config("ResNet50")

    def test_alexnet_shapes(self):
        config = alexnet_config()
        assert config.input_shape == (227, 227, 3)
        assert config.output_shape() == (10,)
        shaped = {s.definition.name: s.output_shape for s in config.shaped_layers()}
        assert shaped["conv1"] == (55, 55, 96)
        assert shaped["pool5"] == (6, 6, 256)

    def test_yolov2_tiny_shapes(self):
        config = yolov2_tiny_config()
        assert config.output_shape() == (13, 13, 125)
        conv_names = [s.definition.name for s in config.conv_layers()]
        assert conv_names == [f"conv{i}" for i in range(1, 10)]

    def test_vgg16_has_thirteen_convs(self):
        config = vgg16_config()
        assert len(list(config.conv_layers())) == 13
        assert config.output_shape() == (10,)

    def test_first_layer_is_input_layer_and_last_is_float(self):
        for name in BENCHMARK_MODELS:
            config = get_model_config(name)
            convs_and_denses = [l for l in config.layers if l.kind in ("conv", "dense")]
            assert convs_and_denses[0].input_layer
            assert convs_and_denses[0].binary
            assert not convs_and_denses[-1].binary

    def test_model_sizes_match_paper_scale(self):
        """Full-precision sizes should be within ~15% of Table II."""
        expectations = {"AlexNet": 249.5, "YOLOv2 Tiny": 63.4, "VGG16": 553.4}
        for name, paper_mb in expectations.items():
            measured = get_model_config(name).full_precision_size_bytes() / 2**20
            assert measured == pytest.approx(paper_mb, rel=0.15)

    def test_binarized_sizes_much_smaller(self):
        for name in BENCHMARK_MODELS:
            report = model_size_report(get_model_config(name))
            assert report["compression_ratio"] > 15

    def test_yolo_macs_match_published_value(self):
        macs = yolov2_tiny_config().multiply_accumulates()
        assert macs == pytest.approx(3.49e9, rel=0.05)

    def test_unknown_layer_kind_rejected(self):
        config = ModelConfig(
            name="bad", dataset="x", input_shape=(8, 8, 3), num_classes=2,
            layers=(LayerDef("recurrent", "r"),),
        )
        with pytest.raises(ValueError):
            config.output_shape()

    def test_layer_def_with_name(self):
        layer = LayerDef("conv", "a", out_channels=4, kernel_size=3)
        assert layer.with_name("b").name == "b"

    def test_conv_geometry_only_for_convs(self):
        config = yolov2_tiny_config()
        pool = next(s for s in config.shaped_layers() if s.definition.kind == "maxpool")
        with pytest.raises(ValueError):
            _ = pool.conv_geometry


class TestZooBuilders:
    def test_phonebit_network_runs_on_reduced_input(self):
        config = yolov2_tiny_config(input_size=64)
        network = build_phonebit_network(config, rng=0)
        image = np.random.default_rng(0).integers(
            0, 256, size=(1, 64, 64, 3)
        ).astype(np.uint8)
        out = network.forward(image)
        assert out.shape == (1, 2, 2, 125)

    def test_float_network_runs_on_reduced_input(self):
        config = yolov2_tiny_config(input_size=64)
        network = build_float_network(config, rng=0)
        image = np.random.default_rng(1).normal(size=(1, 64, 64, 3)).astype(np.float32)
        out = network.forward(image)
        assert out.shape == (1, 2, 2, 125)

    def test_phonebit_network_parameter_split(self):
        config = alexnet_config(input_size=67)
        network = build_phonebit_network(config, rng=0)
        count = network.param_count()
        assert count.binary > count.float32

    def test_builders_are_deterministic(self):
        config = yolov2_tiny_config(input_size=64)
        first = build_phonebit_network(config, rng=7)
        second = build_phonebit_network(config, rng=7)
        np.testing.assert_array_equal(first.layers[0].weight_bits,
                                      second.layers[0].weight_bits)

    def test_unknown_kind_rejected_by_builders(self):
        config = ModelConfig(
            name="bad", dataset="x", input_shape=(8, 8, 3), num_classes=2,
            layers=(LayerDef("conv", "c", out_channels=4, kernel_size=3, padding=1),
                    LayerDef("gru", "g")),
        )
        with pytest.raises(ValueError):
            build_phonebit_network(config)
