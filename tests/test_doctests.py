"""Run the runnable docstring examples of the public surfaces under tier-1.

The docs promise every example works as written (``docs/architecture.md``
links readers straight to these docstrings), so the examples are executed
as doctests by the plain ``pytest`` invocation — no extra flags needed.
The CI docs-smoke job additionally runs ``pytest --doctest-modules`` over
the same modules; this file is what keeps the examples green for anyone who
only runs the tier-1 suite.
"""

import doctest

import pytest

import repro.core.bitpack
import repro.core.engine
import repro.core.model_format
import repro.core.plan
import repro.serving.router
import repro.serving.scheduler
import repro.serving.service
import repro.serving.shm_store
import repro.serving.transport

#: Public-surface modules whose docstring examples must stay runnable.
DOCUMENTED_MODULES = [
    repro.core.bitpack,
    repro.core.engine,
    repro.core.model_format,
    repro.core.plan,
    repro.serving.router,
    repro.serving.scheduler,
    repro.serving.service,
    repro.serving.shm_store,
    repro.serving.transport,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, (
        f"{module.__name__} lost its runnable examples; the docs promise them"
    )
    assert result.failed == 0


def test_every_documented_module_declares_examples():
    """Each listed module must carry at least one ``Examples`` section."""
    import inspect

    for module in DOCUMENTED_MODULES:
        source = inspect.getsource(module)
        assert "Examples\n" in source or ">>>" in source, module.__name__
