"""Tests for metrics, reporting and the experiment drivers."""

import pytest

from repro.analysis import ablations, experiments
from repro.analysis.metrics import (
    accuracy_drop,
    compression_ratio,
    fps,
    fps_per_watt,
    geometric_mean,
    speedup_summary,
)
from repro.analysis.reporting import format_bar_chart, format_table, paper_vs_measured
from repro.gpusim.device import snapdragon_855


class TestMetrics:
    def test_speedup_summary_skips_failures(self):
        summary = speedup_summary(
            "baseline",
            {"a": 100.0, "b": None, "c": 300.0},
            {"a": 10.0, "b": 5.0, "c": 30.0},
        )
        assert summary.per_model == {"a": 10.0, "c": 10.0}
        assert summary.mean == pytest.approx(10.0)
        assert summary.maximum == pytest.approx(10.0)

    def test_compression_and_accuracy(self):
        assert compression_ratio(100, 5) == 20
        assert accuracy_drop(92.5, 87.8) == pytest.approx(4.7)
        with pytest.raises(ValueError):
            compression_ratio(10, 0)

    def test_fps_and_fps_per_watt(self):
        assert fps(50.0) == 20.0
        assert fps_per_watt(50.0, 500.0) == pytest.approx(40.0)
        with pytest.raises(ValueError):
            fps(0)
        with pytest.raises(ValueError):
            fps_per_watt(10, 0)

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) != geometric_mean([])  # NaN


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.5" in text and "4.2" in text

    def test_format_bar_chart(self):
        chart = format_bar_chart({"conv1": 5.0, "conv2": 50.0}, title="fig")
        assert chart.startswith("fig")
        assert chart.count("#") > 0

    def test_paper_vs_measured(self):
        text = paper_vs_measured([["t3", 10, 12]])
        assert "t3" in text


class TestExperiments:
    def test_table1(self):
        table = experiments.table1_devices()
        text = table.table()
        assert "Snapdragon 820" in text and "384" in text

    def test_table2_model_size(self):
        table = experiments.table2_model_size()
        assert {row["model"] for row in table.rows} == {"AlexNet", "YOLOv2 Tiny", "VGG16"}
        assert all(row["compression_ratio"] > 15 for row in table.rows)
        assert "Table II" in table.table()

    def test_table3_runtime_structure(self):
        table = experiments.table3_runtime(models=("YOLOv2 Tiny",))
        assert set(table.results) == {"Snapdragon 820", "Snapdragon 855"}
        phonebit = table.runtime_ms("Snapdragon 855", "YOLOv2 Tiny", "PhoneBit")
        cnndroid = table.runtime_ms("Snapdragon 855", "YOLOv2 Tiny", "CNNdroid GPU")
        assert phonebit is not None and cnndroid is not None
        assert cnndroid > phonebit
        speedups = table.speedups("Snapdragon 855")
        assert speedups["CNNdroid CPU"] > speedups["Tensorflow Lite Quant"] > 1
        assert "Table III" in table.table()

    def test_table3_reports_oom_and_crash(self):
        table = experiments.table3_runtime(models=("VGG16",))
        text = table.table("Snapdragon 855")
        assert "OOM" in text and "CRASH" in text

    def test_table4_energy_shape(self):
        table = experiments.table4_energy()
        phonebit = table.reports["PhoneBit"]
        assert phonebit is not None
        others = [r for name, r in table.reports.items()
                  if r is not None and name != "PhoneBit"]
        assert all(phonebit.fps_per_watt > r.fps_per_watt for r in others)
        assert all(phonebit.average_power_mw < r.average_power_mw
                   for name, r in table.reports.items()
                   if r is not None and "CPU" in name)
        assert "Table IV" in table.table()

    def test_figure5_shape(self):
        figure = experiments.figure5_layer_speedup()
        speedups = figure.speedups
        assert set(speedups) == {f"conv{i}" for i in range(1, 10)}
        middle = [speedups[f"conv{i}"] for i in range(2, 9)]
        # Binary middle layers: tens of ×; first layer smaller (bit-planes);
        # float last layer only a few ×.
        assert min(middle) > 10
        assert speedups["conv1"] < max(middle)
        assert speedups["conv9"] < 10
        assert "Figure 5" in figure.chart()

    def test_run_all_returns_every_experiment(self):
        results = experiments.run_all()
        assert {"table1", "table2", "table3", "table4", "figure5"} <= set(results)


class TestAblations:
    def test_fusion_ablation_direction(self):
        result = ablations.fusion_ablation()
        assert result.runtimes_ms["unfused conv/BN/binarize"] > result.runtimes_ms["fused (PhoneBit)"]
        assert "Fusion" in result.table("Fusion ablation")

    def test_branchless_ablation_direction(self):
        result = ablations.branchless_ablation()
        assert result.runtimes_ms["divergent (Eqn. 8)"] > result.runtimes_ms["branchless (Eqn. 9)"]

    def test_packing_width_monotone(self):
        result = ablations.packing_width_ablation(word_sizes=(8, 32, 64))
        times = list(result.runtimes_ms.values())
        assert times[0] > times[1] > times[2]

    def test_workload_rule_ablation(self):
        result = ablations.workload_rule_ablation()
        assert result.runtimes_ms["separate packing pass"] >= result.runtimes_ms[
            "integrated packing (<=256 ch)"
        ]

    def test_ablation_on_other_device(self):
        result = ablations.fusion_ablation(device=snapdragon_855())
        assert result.device == "Snapdragon 855"
