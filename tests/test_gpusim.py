"""Tests for the mobile-GPU simulator: devices, cost model, memory, energy."""

import numpy as np
import pytest

from repro.gpusim.cost_model import CostModel, EfficiencyProfile
from repro.gpusim.device import get_device, snapdragon_820, snapdragon_855
from repro.gpusim.divergence import divergence_penalty
from repro.gpusim.energy import EnergyModel
from repro.gpusim.kernel import ExecutionUnit, KernelLaunch, LayerWorkload, OpKind
from repro.gpusim.memory import MemoryTracker, OutOfMemoryError, access_efficiency
from repro.gpusim.profiler import TrepnLikeProfiler
from repro.gpusim.scheduler import combine_times, estimate_schedule


def _kernel(**overrides) -> KernelLaunch:
    defaults = dict(
        name="k",
        work_items=100_000,
        ops_per_item=100.0,
        bytes_read_per_item=64.0,
        bytes_written_per_item=4.0,
        op_kind=OpKind.FP32,
        vector_width=4,
    )
    defaults.update(overrides)
    return KernelLaunch(**defaults)


class TestDevices:
    def test_table1_rows(self):
        row_820 = snapdragon_820().table_row()
        row_855 = snapdragon_855().table_row()
        assert row_820["ALUs in GPU"] == 256
        assert row_855["ALUs in GPU"] == 384
        assert row_820["Memory"] == "3GB"
        assert row_855["Memory"] == "8GB"

    def test_855_gpu_faster_than_820(self):
        assert snapdragon_855().gpu.peak_gflops("fp32") > snapdragon_820().gpu.peak_gflops("fp32")

    def test_fp16_rate_doubles_fp32(self):
        gpu = snapdragon_855().gpu
        assert gpu.peak_gflops("fp16") == pytest.approx(2 * gpu.peak_gflops("fp32"))

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            snapdragon_855().gpu.peak_gflops("fp8")
        with pytest.raises(ValueError):
            snapdragon_855().cpu.peak_gflops("fp8")

    def test_cpu_threads_capped_at_big_cores(self):
        cpu = snapdragon_855().cpu
        assert cpu.peak_gflops("fp32", threads=100) == cpu.peak_gflops("fp32")
        assert cpu.peak_gflops("fp32", threads=1) < cpu.peak_gflops("fp32", threads=4)

    def test_get_device_lookup(self):
        assert get_device("snapdragon_820").soc == "Snapdragon 820"
        assert get_device("SD855").soc == "Snapdragon 855"
        with pytest.raises(KeyError):
            get_device("snapdragon_999")

    def test_memory_budget(self):
        device = snapdragon_820()
        assert device.app_memory_budget_bytes == pytest.approx(1.5 * 1024**3)


class TestKernelLaunch:
    def test_totals(self):
        kernel = _kernel(work_items=10, ops_per_item=5, bytes_read_per_item=2,
                         bytes_written_per_item=1)
        assert kernel.total_ops == 50
        assert kernel.total_bytes == 30

    def test_scaled(self):
        kernel = _kernel(ops_per_item=10)
        assert kernel.scaled(2.0).ops_per_item == 20

    def test_layer_workload_totals(self):
        workload = LayerWorkload("l", "conv", kernels=[_kernel(), _kernel()])
        assert workload.total_ops == 2 * _kernel().total_ops


class TestEfficiencyProfile:
    def test_defaults_valid(self):
        EfficiencyProfile()

    @pytest.mark.parametrize("field,value", [("compute_efficiency", 0.0),
                                             ("compute_efficiency", 1.5),
                                             ("memory_efficiency", 0.0)])
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ValueError):
            EfficiencyProfile(**{field: value})


class TestCostModel:
    def test_kernel_cost_positive_and_bounded(self):
        model = CostModel(snapdragon_855())
        cost = model.kernel_cost(_kernel())
        assert cost.total_s > 0
        assert cost.combined_s <= cost.compute_s + cost.memory_s + 1e-12
        assert cost.combined_s >= max(cost.compute_s, cost.memory_s) - 1e-12

    def test_compute_bound_vs_memory_bound(self):
        model = CostModel(snapdragon_855())
        compute_heavy = model.kernel_cost(_kernel(ops_per_item=1e5, bytes_read_per_item=1))
        memory_heavy = model.kernel_cost(_kernel(ops_per_item=1, bytes_read_per_item=1e5))
        assert compute_heavy.bound == "compute"
        assert memory_heavy.bound == "memory"

    def test_lower_efficiency_is_slower(self):
        fast = CostModel(snapdragon_855(), EfficiencyProfile(compute_efficiency=1.0))
        slow = CostModel(snapdragon_855(), EfficiencyProfile(compute_efficiency=0.1))
        kernel = _kernel(ops_per_item=1e4)
        assert slow.kernel_cost(kernel).compute_s > fast.kernel_cost(kernel).compute_s

    def test_divergent_kernel_is_slower(self):
        model = CostModel(snapdragon_855())
        straight = model.kernel_cost(_kernel())
        divergent = model.kernel_cost(_kernel(divergent=True))
        assert divergent.compute_s > straight.compute_s

    def test_cpu_kernel_uses_cpu_speed(self):
        model = CostModel(snapdragon_855())
        one_thread = model.kernel_cost(_kernel(unit=ExecutionUnit.CPU, threads=1,
                                               ops_per_item=1e4))
        four_threads = model.kernel_cost(_kernel(unit=ExecutionUnit.CPU, threads=4,
                                                 ops_per_item=1e4))
        assert one_thread.compute_s > four_threads.compute_s

    def test_run_cost_aggregates_layers(self):
        model = CostModel(snapdragon_855(), EfficiencyProfile(per_inference_overhead_s=0.01))
        workloads = [LayerWorkload("a", "conv", [_kernel()]),
                     LayerWorkload("b", "conv", [_kernel()])]
        run = model.run_cost(workloads)
        assert run.total_ms == pytest.approx(
            sum(l.total_s for l in run.layer_costs) * 1e3 + 10.0
        )
        assert set(run.layer_times_ms()) == {"a", "b"}

    def test_bitwise_kernels_cheaper_per_op_than_fp32_per_mac(self):
        """64 MACs collapse into a few word ops: binary conv wins per MAC."""
        model = CostModel(snapdragon_855())
        macs = 64 * 1000
        fp32 = _kernel(work_items=1000, ops_per_item=2 * 64, op_kind=OpKind.FP32)
        binary = _kernel(work_items=1000, ops_per_item=6, op_kind=OpKind.BITWISE)
        assert model.kernel_cost(binary).compute_s < model.kernel_cost(fp32).compute_s
        assert macs > 0


class TestMemoryModel:
    def test_coalesced_beats_uncoalesced(self):
        assert access_efficiency(True, 4) > access_efficiency(False, 4)

    def test_vectorized_beats_scalar(self):
        assert access_efficiency(True, 4) > access_efficiency(True, 1)

    def test_memory_tracker_oom(self):
        tracker = MemoryTracker(budget_bytes=1000)
        tracker.allocate("weights", 800)
        with pytest.raises(OutOfMemoryError):
            tracker.allocate("activations", 300)

    def test_memory_tracker_free(self):
        tracker = MemoryTracker(budget_bytes=1000)
        tracker.allocate("weights", 800)
        tracker.free("weights")
        tracker.allocate("activations", 900)
        assert tracker.total_bytes == 900

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(budget_bytes=10).allocate("x", -1)


class TestScheduler:
    def test_occupancy_increases_with_work(self):
        gpu = snapdragon_855().gpu
        small = estimate_schedule(gpu, _kernel(work_items=64))
        large = estimate_schedule(gpu, _kernel(work_items=1_000_000))
        assert large.occupancy > small.occupancy
        assert large.overlap > small.overlap

    def test_private_memory_pressure_reduces_occupancy(self):
        gpu = snapdragon_855().gpu
        light = estimate_schedule(gpu, _kernel(metadata={"private_bytes": 32}))
        heavy = estimate_schedule(gpu, _kernel(metadata={"private_bytes": 65536}))
        assert heavy.occupancy < light.occupancy

    def test_combine_times_limits(self):
        assert combine_times(3.0, 1.0, overlap=1.0) == 3.0
        assert combine_times(3.0, 1.0, overlap=0.0) == 4.0
        assert 3.0 < combine_times(3.0, 1.0, overlap=0.5) < 4.0


class TestDivergence:
    def test_no_penalty_for_straight_line_code(self):
        assert divergence_penalty(_kernel()) == 1.0

    def test_penalty_for_divergent_kernel(self):
        assert divergence_penalty(_kernel(divergent=True)) > 1.0

    def test_penalty_scales_with_paths(self):
        two = divergence_penalty(_kernel(divergent=True, metadata={"branch_paths": 2}))
        eight = divergence_penalty(_kernel(divergent=True, metadata={"branch_paths": 8}))
        assert eight > two


class TestEnergyAndProfiler:
    def _run(self, device):
        model = CostModel(device)
        workloads = [
            LayerWorkload("conv", "conv", [_kernel(op_kind=OpKind.BITWISE)]),
            LayerWorkload("head", "conv", [_kernel(op_kind=OpKind.FP32)]),
        ]
        return model.run_cost(workloads)

    def test_energy_report_consistency(self):
        device = snapdragon_820()
        run = self._run(device)
        report = EnergyModel(device).report(run)
        assert report.runtime_ms == pytest.approx(run.total_ms)
        assert report.average_power_mw > 0
        assert report.energy_per_frame_mj == pytest.approx(
            report.average_power_mw * run.total_s, rel=1e-6
        )
        assert report.fps_per_watt == pytest.approx(
            report.fps / (report.average_power_mw / 1000.0)
        )

    def test_binary_workload_uses_less_power_than_float(self):
        device = snapdragon_820()
        model = CostModel(device)
        binary = model.run_cost([LayerWorkload("b", "conv",
                                               [_kernel(op_kind=OpKind.BITWISE)])])
        floaty = model.run_cost([LayerWorkload("f", "conv",
                                               [_kernel(op_kind=OpKind.FP32)])])
        energy = EnergyModel(device)
        assert energy.report(binary).average_power_mw < energy.report(floaty).average_power_mw

    def test_profiler_samples_cover_duration(self):
        device = snapdragon_820()
        run = self._run(device)
        profiler = TrepnLikeProfiler(EnergyModel(device), sample_interval_ms=50)
        trace = profiler.profile(run, duration_s=0.5)
        assert len(trace.samples) == 10
        assert trace.average_power_mw > 0
        assert trace.peak_power_mw >= trace.average_power_mw
        assert {s.active_layer for s in trace.samples} <= {"conv", "head", "host-overhead"}

    def test_profiler_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TrepnLikeProfiler(EnergyModel(snapdragon_820()), sample_interval_ms=0)

    def test_energy_report_rejects_empty_run(self):
        device = snapdragon_820()
        run = CostModel(device).run_cost([])
        with pytest.raises(ValueError):
            EnergyModel(device).report(run)
