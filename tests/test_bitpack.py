"""Unit and property tests for channel bit packing and packed dot products."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitpack


class TestWordSizes:
    def test_supported_word_dtypes(self):
        assert bitpack.word_dtype(8) == np.uint8
        assert bitpack.word_dtype(16) == np.uint16
        assert bitpack.word_dtype(32) == np.uint32
        assert bitpack.word_dtype(64) == np.uint64

    def test_unsupported_word_size_rejected(self):
        with pytest.raises(ValueError):
            bitpack.word_dtype(12)

    def test_words_per_channel_rounds_up(self):
        assert bitpack.words_per_channel(1, 64) == 1
        assert bitpack.words_per_channel(64, 64) == 1
        assert bitpack.words_per_channel(65, 64) == 2
        assert bitpack.words_per_channel(128, 32) == 4

    def test_words_per_channel_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bitpack.words_per_channel(0, 64)

    def test_select_word_size_small_channels(self):
        assert bitpack.select_word_size(3) == 8
        assert bitpack.select_word_size(9) == 16
        assert bitpack.select_word_size(20) == 32
        assert bitpack.select_word_size(64) == 64
        assert bitpack.select_word_size(512) == 64

    def test_select_word_size_respects_preferred(self):
        assert bitpack.select_word_size(512, preferred=32) == 32
        assert bitpack.select_word_size(4, preferred=32) == 8

    def test_packing_efficiency(self):
        assert bitpack.packing_efficiency(64, 64) == 1.0
        assert bitpack.packing_efficiency(3, 8) == pytest.approx(3 / 8)
        assert bitpack.packing_efficiency(65, 64) == pytest.approx(65 / 128)


class TestPackUnpack:
    @pytest.mark.parametrize("word_size", [8, 16, 32, 64])
    @pytest.mark.parametrize("channels", [1, 3, 8, 37, 64, 100])
    def test_roundtrip(self, rng, word_size, channels):
        bits = rng.integers(0, 2, size=(2, 4, 5, channels), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, word_size=word_size, axis=3)
        assert packed.dtype == bitpack.word_dtype(word_size)
        assert packed.shape[-1] == bitpack.words_per_channel(channels, word_size)
        recovered = bitpack.unpack_bits(packed, channels, axis=3)
        np.testing.assert_array_equal(bits, recovered)

    def test_roundtrip_other_axis(self, rng):
        bits = rng.integers(0, 2, size=(37, 6), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, word_size=16, axis=0)
        recovered = bitpack.unpack_bits(packed, 37, axis=0)
        np.testing.assert_array_equal(bits, recovered)

    def test_pack_rejects_non_binary_values(self):
        with pytest.raises(ValueError):
            bitpack.pack_bits(np.array([0, 1, 2]), word_size=8)

    def test_padding_bits_are_zero(self):
        bits = np.ones((1, 5), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, word_size=8, axis=1)
        # 5 ones in the low bits, 3 zero padding bits: 0b00011111 = 31.
        assert packed[0, 0] == 31


class TestPopcount:
    def test_popcount_uint8(self):
        values = np.array([0, 1, 3, 255], dtype=np.uint8)
        np.testing.assert_array_equal(bitpack.popcount(values), [0, 1, 2, 8])

    def test_popcount_uint64(self):
        values = np.array([0, 2**63, 2**64 - 1], dtype=np.uint64)
        np.testing.assert_array_equal(bitpack.popcount(values), [0, 1, 64])

    def test_popcount_rejects_signed(self):
        with pytest.raises(ValueError):
            bitpack.popcount(np.array([1, 2], dtype=np.int32))

    def test_popcount_preserves_shape(self, rng):
        values = rng.integers(0, 2**32, size=(3, 4, 5), dtype=np.uint64)
        assert bitpack.popcount(values).shape == (3, 4, 5)


class TestPackedDots:
    @pytest.mark.parametrize("word_size", [8, 32, 64])
    @pytest.mark.parametrize("length", [1, 7, 64, 130])
    def test_bipolar_dot_matches_float(self, rng, word_size, length):
        a_bits = rng.integers(0, 2, size=(4, length), dtype=np.uint8)
        b_bits = rng.integers(0, 2, size=(4, length), dtype=np.uint8)
        a_packed = bitpack.pack_bits(a_bits, word_size=word_size, axis=1)
        b_packed = bitpack.pack_bits(b_bits, word_size=word_size, axis=1)
        expected = ((2.0 * a_bits - 1) * (2.0 * b_bits - 1)).sum(axis=1)
        result = bitpack.packed_dot_bipolar(a_packed, b_packed, length, axis=1)
        np.testing.assert_array_equal(result, expected.astype(np.int64))

    @pytest.mark.parametrize("length", [3, 29, 64, 200])
    def test_unipolar_dot_matches_float(self, rng, length):
        x_bits = rng.integers(0, 2, size=(5, length), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(5, length), dtype=np.uint8)
        x_packed = bitpack.pack_bits(x_bits, word_size=64, axis=1)
        w_packed = bitpack.pack_bits(w_bits, word_size=64, axis=1)
        expected = (x_bits * (2.0 * w_bits - 1)).sum(axis=1)
        result = bitpack.packed_dot_unipolar(x_packed, w_packed, axis=1)
        np.testing.assert_array_equal(result, expected.astype(np.int64))

    def test_xor_popcount_mismatched_dtypes_rejected(self):
        a = np.zeros(2, dtype=np.uint8)
        b = np.zeros(2, dtype=np.uint16)
        with pytest.raises(ValueError):
            bitpack.packed_xor_popcount(a, b)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=200),
        word_size=st.sampled_from([8, 16, 32, 64]),
    )
    def test_roundtrip_property(self, bits, word_size):
        array = np.array(bits, dtype=np.uint8)
        packed = bitpack.pack_bits(array, word_size=word_size, axis=0)
        recovered = bitpack.unpack_bits(packed, len(bits), axis=0)
        np.testing.assert_array_equal(array, recovered)

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        length=st.integers(1, 150),
        word_size=st.sampled_from([8, 32, 64]),
    )
    def test_eqn1_property(self, data, length, word_size):
        """Eqn. (1): a·b == Len − 2·popcount(xor) for every bit pattern."""
        a_bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=length, max_size=length)),
            dtype=np.uint8,
        )
        b_bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=length, max_size=length)),
            dtype=np.uint8,
        )
        a_packed = bitpack.pack_bits(a_bits, word_size=word_size, axis=0)
        b_packed = bitpack.pack_bits(b_bits, word_size=word_size, axis=0)
        expected = int(((2 * a_bits.astype(int) - 1) * (2 * b_bits.astype(int) - 1)).sum())
        assert bitpack.packed_dot_bipolar(a_packed, b_packed, length, axis=0) == expected

    @settings(max_examples=30, deadline=None)
    @given(length=st.integers(1, 200))
    def test_popcount_of_all_ones(self, length):
        bits = np.ones(length, dtype=np.uint8)
        packed = bitpack.pack_bits(bits, word_size=64, axis=0)
        assert int(bitpack.popcount(packed).sum()) == length
