"""Tests for the STE trainer and the train→convert→deploy loop."""

import numpy as np
import pytest

from repro.core.converter import convert_model
from repro.datasets import synthetic_cifar10
from repro.training import (
    BinaryMlpClassifier,
    sign_ste_backward,
    sign_ste_forward,
    train_classifier,
)
from repro.training.ste import binarize_weights_ste, clip_latent_weights


@pytest.fixture(scope="module")
def dataset():
    return synthetic_cifar10(train_size=192, test_size=64, image_size=8, noise=25,
                             seed=3)


@pytest.fixture(scope="module")
def trained_binary(dataset):
    return train_classifier(dataset, hidden_dims=(64,), binary=True, epochs=12,
                            learning_rate=0.05, seed=1)


class TestSte:
    def test_forward_sign_convention(self):
        np.testing.assert_array_equal(
            sign_ste_forward(np.array([-2.0, 0.0, 3.0])), [-1.0, 1.0, 1.0]
        )

    def test_backward_clips_outside_window(self):
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        grad = np.ones(4)
        np.testing.assert_array_equal(sign_ste_backward(x, grad), [0, 1, 1, 0])

    def test_weight_helpers(self):
        weights = np.array([-3.0, 0.2, 4.0])
        np.testing.assert_array_equal(binarize_weights_ste(weights), [-1, 1, 1])
        np.testing.assert_array_equal(clip_latent_weights(weights), [-1, 0.2, 1])


class TestTrainer:
    def test_requires_hidden_layers(self):
        with pytest.raises(ValueError):
            BinaryMlpClassifier(10, [], 3)

    def test_binary_model_learns_above_chance(self, dataset, trained_binary):
        _, result = trained_binary
        assert result.binary
        assert result.test_accuracy > 2.5 / dataset.num_classes
        assert result.train_accuracy >= result.test_accuracy - 0.25

    def test_float_model_learns_above_chance(self, dataset):
        _, result = train_classifier(dataset, hidden_dims=(64,), binary=False,
                                     epochs=12, learning_rate=0.05, seed=1)
        assert result.test_accuracy > 2.5 / dataset.num_classes

    def test_losses_decrease(self, trained_binary):
        _, result = trained_binary
        assert result.losses[-1] < result.losses[0]

    def test_float_export_rejected(self, dataset):
        model, _ = train_classifier(dataset, hidden_dims=(32,), binary=False,
                                    epochs=1, seed=0)
        with pytest.raises(ValueError):
            model.export_layer_specs()

    def test_predictions_shape(self, dataset, trained_binary):
        model, _ = trained_binary
        predictions = model.predict(dataset.test_images)
        assert predictions.shape == (len(dataset.test_images),)
        assert predictions.min() >= 0 and predictions.max() < dataset.num_classes


class TestTrainConvertDeploy:
    def test_converted_network_matches_trainer_forward(self, dataset, trained_binary):
        """The Fig. 2 flow: trained weights → converter → PhoneBit inference."""
        model, _ = trained_binary
        specs = model.export_layer_specs()
        input_dim = int(np.prod(dataset.image_shape))
        network = convert_model("trained-mlp", (input_dim,), specs,
                                input_dtype="float32")

        images = dataset.test_images[:32]
        prepared = model.prepared_input(images)
        logits = network.forward(prepared)
        phonebit_predictions = np.argmax(logits.data, axis=1)
        trainer_predictions = model.predict(images)
        np.testing.assert_array_equal(phonebit_predictions, trainer_predictions)

    def test_converted_network_roundtrips_through_pbit_format(self, dataset,
                                                              trained_binary):
        import io

        from repro.core import model_format

        model, _ = trained_binary
        specs = model.export_layer_specs()
        input_dim = int(np.prod(dataset.image_shape))
        network = convert_model("trained-mlp", (input_dim,), specs,
                                input_dtype="float32")
        buffer = io.BytesIO()
        model_format.save_network(network, buffer)
        buffer.seek(0)
        restored = model_format.load_network(buffer)

        prepared = model.prepared_input(dataset.test_images[:16])
        np.testing.assert_array_equal(
            np.argmax(network.forward(prepared).data, axis=1),
            np.argmax(restored.forward(prepared).data, axis=1),
        )
