"""Equivalence tests for the vectorized SWAR/tiled kernel fast paths.

The fast kernels (hardware/SWAR popcount, packbits-based packing, tiled
xor/and-popcount GEMMs, strided-view patch extraction, vectorized pooling)
must be bit-exact against the float references and the naive formulations
across every supported word size, odd channel counts (exercising padding
bits), strides and paddings.
"""

import numpy as np
import pytest

from repro.core import binary_conv, bitpack
from repro.core.layers.pooling import AvgPool2d, MaxPool2d, _pool_windows
from repro.core.tensor import Layout, Tensor, conv_output_size


class TestPopcountVariants:
    @pytest.mark.parametrize("word_size", bitpack.SUPPORTED_WORD_SIZES)
    def test_all_popcount_paths_agree(self, rng, word_size):
        dtype = bitpack.word_dtype(word_size)
        info = np.iinfo(dtype)
        values = rng.integers(0, info.max, size=(128,), dtype=dtype, endpoint=True)
        expected = np.array([bin(int(v)).count("1") for v in values], dtype=np.int64)
        np.testing.assert_array_equal(bitpack.popcount(values), expected)
        np.testing.assert_array_equal(bitpack.popcount_lut(values), expected)
        np.testing.assert_array_equal(
            bitpack.popcount_swar(values).astype(np.int64), expected
        )
        np.testing.assert_array_equal(
            bitpack.popcount_words(values).astype(np.int64), expected
        )

    @pytest.mark.parametrize("word_size", bitpack.SUPPORTED_WORD_SIZES)
    def test_swar_extremes(self, word_size):
        dtype = bitpack.word_dtype(word_size)
        values = np.array([0, 1, np.iinfo(dtype).max], dtype=dtype)
        np.testing.assert_array_equal(
            bitpack.popcount_swar(values).astype(np.int64), [0, 1, word_size]
        )

    def test_swar_rejects_signed(self):
        with pytest.raises(ValueError):
            bitpack.popcount_swar(np.array([1], dtype=np.int32))


class TestPackBitsEquivalence:
    @staticmethod
    def _shift_sum_pack(bits, word_size, axis):
        """The seed shift-and-sum packing algorithm, kept as the oracle."""
        dtype = bitpack.word_dtype(word_size)
        moved = np.moveaxis(np.asarray(bits), axis, -1)
        length = moved.shape[-1]
        n_words = bitpack.words_per_channel(length, word_size)
        padded = n_words * word_size
        if padded != length:
            pad = np.zeros(moved.shape[:-1] + (padded - length,), dtype=moved.dtype)
            moved = np.concatenate([moved, pad], axis=-1)
        grouped = moved.reshape(moved.shape[:-1] + (n_words, word_size)).astype(np.uint64)
        shifts = np.arange(word_size, dtype=np.uint64)
        packed = (grouped << shifts).sum(axis=-1, dtype=np.uint64).astype(dtype)
        return np.ascontiguousarray(np.moveaxis(packed, -1, axis))

    @pytest.mark.parametrize("word_size", bitpack.SUPPORTED_WORD_SIZES)
    @pytest.mark.parametrize("channels", [1, 3, 5, 13, 37, 64, 100, 130])
    def test_packbits_matches_shift_sum(self, rng, word_size, channels):
        bits = rng.integers(0, 2, size=(2, 3, 4, channels), dtype=np.uint8)
        fast = bitpack.pack_bits(bits, word_size=word_size, axis=3)
        oracle = self._shift_sum_pack(bits, word_size, axis=3)
        np.testing.assert_array_equal(fast, oracle)
        assert fast.dtype == bitpack.word_dtype(word_size)

    @pytest.mark.parametrize("word_size", bitpack.SUPPORTED_WORD_SIZES)
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_roundtrip_on_every_axis(self, rng, word_size, axis):
        bits = rng.integers(0, 2, size=(7, 11, 13), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, word_size=word_size, axis=axis)
        recovered = bitpack.unpack_bits(packed, bits.shape[axis], axis=axis)
        np.testing.assert_array_equal(bits, recovered)


class TestPopcountGemms:
    @pytest.mark.parametrize("word_size", bitpack.SUPPORTED_WORD_SIZES)
    def test_xor_gemm_matches_bruteforce(self, rng, word_size):
        dtype = bitpack.word_dtype(word_size)
        info = np.iinfo(dtype)
        a = rng.integers(0, info.max, size=(9, 5), dtype=dtype, endpoint=True)
        b = rng.integers(0, info.max, size=(7, 5), dtype=dtype, endpoint=True)
        expected = np.array(
            [
                [sum(bin(int(x ^ y)).count("1") for x, y in zip(row, col)) for col in b]
                for row in a
            ],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(bitpack.xor_popcount_gemm(a, b), expected)

    @pytest.mark.parametrize("word_size", bitpack.SUPPORTED_WORD_SIZES)
    def test_and_gemm_matches_bruteforce(self, rng, word_size):
        dtype = bitpack.word_dtype(word_size)
        info = np.iinfo(dtype)
        a = rng.integers(0, info.max, size=(6, 4), dtype=dtype, endpoint=True)
        b = rng.integers(0, info.max, size=(5, 4), dtype=dtype, endpoint=True)
        expected = np.array(
            [
                [sum(bin(int(x & y)).count("1") for x, y in zip(row, col)) for col in b]
                for row in a
            ],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(bitpack.and_popcount_gemm(a, b), expected)

    def test_gemm_tiling_boundaries(self, rng):
        # Cross both tile boundaries so multi-tile accumulation is exercised.
        rows = bitpack._GEMM_ROW_TILE + 3
        cols = bitpack._GEMM_COL_TILE + 2
        a = rng.integers(0, 2**63, size=(rows, 2), dtype=np.uint64)
        b = rng.integers(0, 2**63, size=(cols, 2), dtype=np.uint64)
        out = bitpack.xor_popcount_gemm(a, b)
        expected = bitpack.popcount(a[:, None, :] ^ b[None, :, :]).sum(axis=-1)
        np.testing.assert_array_equal(out, expected)

    def test_gemm_rejects_mismatched_operands(self):
        a = np.zeros((2, 3), dtype=np.uint64)
        with pytest.raises(ValueError):
            bitpack.xor_popcount_gemm(a, np.zeros((2, 4), dtype=np.uint64))
        with pytest.raises(ValueError):
            bitpack.xor_popcount_gemm(a, np.zeros((2, 3), dtype=np.uint32))
        with pytest.raises(ValueError):
            bitpack.and_popcount_gemm(a, np.zeros((2, 4), dtype=np.uint64))


class TestBinaryConvEquivalence:
    @pytest.mark.parametrize("word_size", bitpack.SUPPORTED_WORD_SIZES)
    @pytest.mark.parametrize("channels", [3, 17, 64, 100])
    def test_word_sizes_and_padding_bits(self, rng, word_size, channels):
        x_bits = rng.integers(0, 2, size=(2, 6, 6, channels), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, channels, 7), dtype=np.uint8)
        x_packed = binary_conv.pack_activations(x_bits, word_size=word_size)
        w_packed = binary_conv.pack_weights(w_bits, word_size=word_size)
        out = binary_conv.binary_conv2d_packed(x_packed, w_packed, channels, 3, 1, 1)
        expected = binary_conv.binary_conv2d_reference(x_bits, w_bits, 3, 1, 1)
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("stride", [1, 2, 3])
    @pytest.mark.parametrize("padding", [0, 1, 2])
    def test_strides_and_paddings(self, rng, stride, padding):
        x_bits = rng.integers(0, 2, size=(1, 9, 9, 21), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, 21, 5), dtype=np.uint8)
        x_packed = binary_conv.pack_activations(x_bits)
        w_packed = binary_conv.pack_weights(w_bits)
        out = binary_conv.binary_conv2d_packed(
            x_packed, w_packed, 21, 3, stride, padding
        )
        expected = binary_conv.binary_conv2d_reference(x_bits, w_bits, 3, stride, padding)
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("stride", [1, 2])
    def test_pointwise_zero_copy_path(self, rng, stride):
        # kernel_size == 1, padding == 0 takes the reshape/stride-slice path
        # that skips im2col entirely.
        x_bits = rng.integers(0, 2, size=(2, 5, 7, 70), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(1, 1, 70, 9), dtype=np.uint8)
        x_packed = binary_conv.pack_activations(x_bits)
        w_packed = binary_conv.pack_weights(w_bits)
        out = binary_conv.binary_conv2d_packed(x_packed, w_packed, 70, 1, stride, 0)
        expected = binary_conv.binary_conv2d_reference(x_bits, w_bits, 1, stride, 0)
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("word_size", bitpack.SUPPORTED_WORD_SIZES)
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_input_bitplane_conv(self, rng, word_size, stride, padding):
        image = rng.integers(0, 256, size=(2, 7, 7, 3)).astype(np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, 3, 6), dtype=np.uint8)
        w_packed = binary_conv.pack_weights(w_bits, word_size=word_size)
        out = binary_conv.input_conv2d_bitplanes(
            image, w_packed, 3, 3, stride, padding, word_size=word_size
        )
        expected = binary_conv.input_conv2d_reference(image, w_bits, 3, stride, padding)
        np.testing.assert_array_equal(out, expected)


class TestPoolingEquivalence:
    @staticmethod
    def _loop_pool(data, pool_size, stride, reducer):
        """The seed per-output-pixel pooling loop, kept as the oracle."""
        n, h, w, c = data.shape
        oh = conv_output_size(h, pool_size, stride, 0)
        ow = conv_output_size(w, pool_size, stride, 0)
        out = np.empty((n, oh, ow, c), dtype=data.dtype)
        for i in range(oh):
            for j in range(ow):
                window = data[:, i * stride:i * stride + pool_size,
                              j * stride:j * stride + pool_size, :]
                out[:, i, j, :] = reducer(window.reshape(n, -1, c))
        return out

    @pytest.mark.parametrize("pool,stride", [(2, 2), (3, 1), (3, 2), (2, 3)])
    def test_pool_windows_match_loop_slices(self, rng, pool, stride):
        data = rng.standard_normal((2, 7, 9, 3))
        windows = _pool_windows(data, pool, stride)
        oh = conv_output_size(7, pool, stride, 0)
        ow = conv_output_size(9, pool, stride, 0)
        assert windows.shape == (2, oh, ow, 3, pool, pool)

    @pytest.mark.parametrize("pool,stride,padding", [(2, 2, 0), (3, 2, 0), (2, 2, 1)])
    def test_packed_max_pool(self, rng, pool, stride, padding):
        bits = rng.integers(0, 2, size=(2, 8, 8, 70), dtype=np.uint8)
        packed = binary_conv.pack_activations(bits)
        layer = MaxPool2d(pool, stride, padding=padding)
        out = layer.forward(Tensor(packed, Layout.NHWC, packed=True, true_channels=70))
        # Oracle: unpack, max-pool ±1 values with -1 padding, repack.
        values = 2.0 * bits.astype(np.float64) - 1.0
        if padding:
            values = np.pad(
                values,
                ((0, 0), (padding, padding), (padding, padding), (0, 0)),
                constant_values=-1.0,
            )
        pooled = self._loop_pool(values, pool, stride, lambda f: f.max(axis=1))
        expected_bits = (pooled > 0).astype(np.uint8)
        recovered = bitpack.unpack_bits(out.data, 70, axis=-1)
        np.testing.assert_array_equal(recovered, expected_bits)

    @pytest.mark.parametrize("pool,stride", [(2, 2), (3, 1)])
    def test_float_max_pool(self, rng, pool, stride):
        data = rng.standard_normal((2, 6, 6, 4)).astype(np.float32)
        layer = MaxPool2d(pool, stride)
        out = layer.forward(Tensor(data, Layout.NHWC))
        expected = self._loop_pool(data, pool, stride, lambda f: f.max(axis=1))
        np.testing.assert_array_equal(out.data, expected)

    @pytest.mark.parametrize("pool,stride", [(2, 2), (3, 1), (3, 2)])
    def test_avg_pool(self, rng, pool, stride):
        data = rng.standard_normal((2, 7, 7, 5)).astype(np.float32)
        layer = AvgPool2d(pool, stride)
        out = layer.forward(Tensor(data, Layout.NHWC))
        as64 = data.astype(np.float64)
        expected = self._loop_pool(
            as64, pool, stride, lambda f: f.mean(axis=1)
        ).astype(np.float32)
        np.testing.assert_array_equal(out.data, expected)
        assert out.data.dtype == np.float32
