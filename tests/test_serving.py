"""Tests for the micro-batching inference service and its building blocks."""

import threading
import time

import numpy as np
import pytest

from repro.core.engine import PhoneBitEngine, split_batch_output
from repro.core.tensor import Layout, Tensor
from repro.serving import (
    BatchingScheduler,
    InferenceService,
    LatencySummary,
    LatencyTracker,
    LRUResponseCache,
    ModelPool,
    input_digest,
    run_closed_loop,
    run_open_loop,
    synthetic_images,
)

#: Generous wall-clock bound for any single future in these tests.
WAIT_S = 30.0


def echo_executor(payloads):
    return [p * 2 for p in payloads]


class TestBatchingScheduler:
    def test_size_triggered_flush(self):
        with BatchingScheduler(echo_executor, max_batch_size=4,
                               max_wait_ms=60_000.0) as scheduler:
            futures = [scheduler.submit(i) for i in range(4)]
            results = [f.result(timeout=WAIT_S) for f in futures]
            assert results == [0, 2, 4, 6]
            stats = scheduler.stats()
        assert stats.batch_count == 1
        assert stats.batches[0].size == 4
        assert stats.batches[0].trigger == "size"
        assert stats.completed == 4 and stats.failed == 0

    def test_timeout_triggered_flush(self):
        with BatchingScheduler(echo_executor, max_batch_size=100,
                               max_wait_ms=30.0) as scheduler:
            future = scheduler.submit(21)
            assert future.result(timeout=WAIT_S) == 42
            stats = scheduler.stats()
        assert stats.batch_count == 1
        assert stats.batches[0].trigger == "timeout"
        assert stats.batches[0].size == 1

    def test_manual_flush(self):
        with BatchingScheduler(echo_executor, max_batch_size=100,
                               max_wait_ms=60_000.0) as scheduler:
            futures = [scheduler.submit(i) for i in (1, 2)]
            scheduler.flush()
            assert [f.result(timeout=WAIT_S) for f in futures] == [2, 4]
            assert scheduler.stats().batches[0].trigger == "flush"

    def test_drain_on_shutdown(self):
        scheduler = BatchingScheduler(echo_executor, max_batch_size=100,
                                      max_wait_ms=60_000.0)
        futures = scheduler.submit_many([1, 2, 3])
        scheduler.close()  # drain=True: pending work still completes
        assert [f.result(timeout=WAIT_S) for f in futures] == [2, 4, 6]
        stats = scheduler.stats()
        assert stats.batch_count == 1
        assert stats.batches[0].trigger == "drain"
        assert stats.completed == 3

    def test_close_without_drain_cancels_pending(self):
        scheduler = BatchingScheduler(echo_executor, max_batch_size=100,
                                      max_wait_ms=60_000.0)
        futures = scheduler.submit_many([1, 2])
        scheduler.close(drain=False)
        assert all(f.cancelled() for f in futures)

    def test_submit_after_close_rejected(self):
        scheduler = BatchingScheduler(echo_executor)
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.submit(1)
        with pytest.raises(RuntimeError):
            scheduler.submit_many([1])

    def test_oversized_burst_splits_into_max_size_batches(self):
        # Full batches cut on size; the leftover tail flushes on timeout.
        with BatchingScheduler(echo_executor, max_batch_size=3,
                               max_wait_ms=30.0) as scheduler:
            futures = scheduler.submit_many(list(range(7)))
            assert [f.result(timeout=WAIT_S) for f in futures] == [
                2 * i for i in range(7)
            ]
            stats = scheduler.stats()
        assert all(batch.size <= 3 for batch in stats.batches)
        assert sum(batch.size for batch in stats.batches) == 7
        assert stats.max_queue_depth == 7
        assert stats.trigger_counts["size"] >= 2

    def test_executor_error_fails_the_batch(self):
        def broken(payloads):
            raise ValueError("kernel exploded")

        with BatchingScheduler(broken, max_batch_size=2,
                               max_wait_ms=60_000.0) as scheduler:
            futures = scheduler.submit_many([1, 2])
            for future in futures:
                with pytest.raises(ValueError, match="kernel exploded"):
                    future.result(timeout=WAIT_S)
            stats = scheduler.stats()
        assert stats.failed == 2 and stats.completed == 0
        assert stats.batches[0].failed

    def test_wrong_result_count_is_an_error(self):
        with BatchingScheduler(lambda payloads: [0], max_batch_size=2,
                               max_wait_ms=60_000.0) as scheduler:
            futures = scheduler.submit_many([1, 2])
            with pytest.raises(RuntimeError, match="2 requests"):
                futures[0].result(timeout=WAIT_S)

    def test_rejects_bad_policy_parameters(self):
        with pytest.raises(ValueError):
            BatchingScheduler(echo_executor, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingScheduler(echo_executor, max_wait_ms=-1.0)

    def test_latencies_are_recorded(self):
        with BatchingScheduler(echo_executor, max_batch_size=2,
                               max_wait_ms=60_000.0) as scheduler:
            futures = scheduler.submit_many([1, 2])
            [f.result(timeout=WAIT_S) for f in futures]
            assert len(scheduler.latencies) == 2

    def test_client_cancel_of_queued_request_does_not_kill_the_worker(self):
        # Regression: resolving an already-cancelled future raises
        # InvalidStateError; if that escaped, the worker thread died and the
        # scheduler silently wedged forever.  Cancelled requests are now
        # dropped when the batch is cut (set_running_or_notify_cancel).
        with BatchingScheduler(echo_executor, max_batch_size=100,
                               max_wait_ms=60_000.0) as scheduler:
            doomed = scheduler.submit(1)
            survivor = scheduler.submit(2)
            assert doomed.cancel()  # still queued: cancellable
            scheduler.flush()
            assert survivor.result(timeout=WAIT_S) == 4
            assert doomed.cancelled()
            # The worker must still be alive and serving new requests.
            later = scheduler.submit(5)
            scheduler.flush()
            assert later.result(timeout=WAIT_S) == 10

    def test_batch_of_only_cancelled_requests_is_skipped(self):
        calls = []

        def tracking_executor(payloads):
            calls.append(list(payloads))
            return [p * 2 for p in payloads]

        with BatchingScheduler(tracking_executor, max_batch_size=100,
                               max_wait_ms=60_000.0) as scheduler:
            future = scheduler.submit(1)
            assert future.cancel()
            scheduler.flush()
            follow_up = scheduler.submit(3)
            scheduler.flush()
            assert follow_up.result(timeout=WAIT_S) == 6
        assert [3] in calls and [1] not in calls


class TestSchedulerWorkerDeath:
    """The worker thread dying must fail futures, never hang them.

    Executor exceptions are forwarded per batch; these tests kill the worker
    *infrastructure* instead — a poisoned injectable clock raises inside the
    wait loop, exactly the kind of failure that used to leave queued futures
    unresolved forever.
    """

    @staticmethod
    def poisoned_clock(fail_after):
        """Clock that explodes on the worker thread's ``fail_after``-th call.

        Calls from other threads (submit timestamps) pass through, so the
        failure is deterministic: it always lands inside the worker loop.
        """
        state = {"calls": 0}

        def clock():
            if threading.current_thread().name.endswith("-worker"):
                state["calls"] += 1
                if state["calls"] > fail_after:
                    raise RuntimeError("clock exploded")
            return 0.0

        return clock

    def test_queued_futures_resolve_with_error_on_worker_death(self):
        scheduler = BatchingScheduler(
            echo_executor, max_batch_size=100, max_wait_ms=60_000.0,
            clock=self.poisoned_clock(fail_after=1),
        )
        accepted = []
        for payload in (1, 2, 3):
            try:
                accepted.append(scheduler.submit(payload))
            except RuntimeError:
                break  # worker already died and closed the scheduler
        assert accepted, "first submit must be accepted"
        scheduler.flush()  # wake the parked worker into its fatal clock call
        for future in accepted:
            # Depending on where the clock lands, the batch fails with the
            # raw clock error (claimed futures) or the queued requests fail
            # with the worker-died error — either way, no future may hang.
            with pytest.raises(RuntimeError, match="clock exploded|worker thread died"):
                future.result(timeout=WAIT_S)
        assert scheduler.stats().failed == len(accepted)
        scheduler.close()  # must not hang or raise

    def test_drain_close_after_worker_death_does_not_hang(self):
        scheduler = BatchingScheduler(
            echo_executor, max_batch_size=100, max_wait_ms=60_000.0,
            clock=self.poisoned_clock(fail_after=1),
        )
        future = scheduler.submit(1)
        start = time.perf_counter()
        scheduler.close(drain=True)
        assert time.perf_counter() - start < WAIT_S
        assert future.done()
        with pytest.raises(RuntimeError):
            future.result(timeout=0)

    def test_submit_after_worker_death_raises(self):
        scheduler = BatchingScheduler(
            echo_executor, max_batch_size=100, max_wait_ms=60_000.0,
            clock=self.poisoned_clock(fail_after=0),
        )
        try:
            scheduler.submit(1)
        except RuntimeError:
            pass
        deadline = time.perf_counter() + WAIT_S
        while not scheduler.closed and time.perf_counter() < deadline:
            time.sleep(0.01)
        assert scheduler.closed
        with pytest.raises(RuntimeError):
            scheduler.submit(2)
        scheduler.close()

    def test_base_exception_from_executor_fails_batch_not_worker(self):
        def exploding(payloads):
            raise KeyboardInterrupt  # BaseException, not Exception

        with BatchingScheduler(exploding, max_batch_size=2,
                               max_wait_ms=5.0) as scheduler:
            future = scheduler.submit(1)
            with pytest.raises(BaseException):
                future.result(timeout=WAIT_S)
            follow_up_executor_alive = scheduler.stats().failed == 1
        assert follow_up_executor_alive


class TestLatencyMetrics:
    def test_summary_percentiles(self):
        tracker = LatencyTracker()
        for ms in range(1, 101):
            tracker.record(ms / 1000.0)
        summary = tracker.summary()
        assert summary.count == 100
        assert summary.p50_ms == pytest.approx(50.5)
        assert summary.p99_ms == pytest.approx(99.01)
        assert summary.max_ms == pytest.approx(100.0)
        assert summary.mean_ms == pytest.approx(50.5)

    def test_empty_summary_is_zero(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0 and summary.p99_ms == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyTracker().record(-1.0)

    def test_window_bounds_memory_but_count_stays_exact(self):
        tracker = LatencyTracker(window=10)
        for ms in range(1, 101):
            tracker.record(ms / 1000.0)
        assert len(tracker) == 100            # exact total
        assert len(tracker.samples()) == 10   # bounded window
        summary = tracker.summary()
        assert summary.count == 100
        # Percentiles come from the most recent window (91..100 ms).
        assert summary.max_ms == pytest.approx(100.0)
        assert summary.p50_ms >= 90.0
        with pytest.raises(ValueError):
            LatencyTracker(window=0)


class TestResponseCache:
    def test_lru_eviction_order(self):
        cache = LRUResponseCache(capacity=2)
        a, b, c = (np.arange(3) + i for i in range(3))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is not None  # refresh "a"; "b" becomes LRU
        cache.put("c", c)
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        stats = cache.stats()
        assert stats.evictions == 1 and stats.size == 2

    def test_stats_and_hit_rate(self):
        cache = LRUResponseCache(capacity=4)
        cache.put("k", np.zeros(2))
        assert cache.get("k") is not None
        assert cache.get("missing") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_cached_values_are_read_only(self):
        cache = LRUResponseCache(capacity=1)
        cache.put("k", np.zeros(3))
        value = cache.get("k")
        with pytest.raises(ValueError):
            value[0] = 1.0

    def test_put_does_not_freeze_or_alias_the_callers_array(self):
        # Freezing the caller's own object would race whoever already holds
        # it; a writable array must be copied, not flipped read-only.
        cache = LRUResponseCache(capacity=2)
        mine = np.zeros(3)
        cache.put("k", mine)
        mine[0] = 7.0  # caller's array stays writable...
        assert cache.get("k")[0] == 0.0  # ...and its writes don't poison us
        # An already-frozen array may be shared without copying.
        frozen = np.zeros(3)
        frozen.setflags(write=False)
        cache.put("f", frozen)
        assert cache.get("f") is frozen

    def test_digest_sensitivity(self):
        image = np.arange(12, dtype=np.uint8).reshape(3, 4)
        base = input_digest("m", image)
        assert input_digest("m", image) == base
        assert input_digest("other", image) != base
        changed = image.copy()
        changed[0, 0] += 1
        assert input_digest("m", changed) != base
        assert input_digest("m", image.reshape(4, 3)) != base
        assert input_digest("m", image.astype(np.uint16)) != base

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUResponseCache(capacity=0)


class TestModelPool:
    def test_lazy_build_is_cached_and_warm(self):
        pool = ModelPool()
        network = pool.get("MicroCNN")
        assert pool.get("microcnn") is network  # case-insensitive, same object
        entry = pool.entry("MicroCNN")
        assert entry.build_ms >= 0.0 and entry.warm_ms >= 0.0
        # Warm means every packed-weight cache is already populated.
        for layer in network.layers:
            cache = getattr(layer, "_packed_cache", None)
            if hasattr(layer, "weights_packed"):
                assert cache is not None

    def test_register_external_network(self, tiny_bnn_network):
        pool = ModelPool()
        pool.register(tiny_bnn_network, name="custom")
        assert pool.get("custom") is tiny_bnn_network
        assert "custom" in pool.loaded()

    def test_available_and_contains(self):
        pool = ModelPool()
        assert "MicroCNN" in pool.available()
        assert "TinyCNN" in pool
        assert pool.loaded() == []

    def test_unknown_model(self):
        pool = ModelPool()
        with pytest.raises(KeyError):
            pool.get("NoSuchNet")
        with pytest.raises(KeyError):
            pool.entry("MicroCNN")  # not loaded yet

    def test_concurrent_first_requests_build_one_copy(self):
        pool = ModelPool()
        results = []

        def fetch():
            results.append(pool.get("MicroCNN"))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=WAIT_S)
            assert not thread.is_alive()
        assert len(results) == 4
        assert all(network is results[0] for network in results)

    def test_failed_build_does_not_wedge_waiters(self):
        pool = ModelPool()
        with pytest.raises(KeyError):
            pool.get("NoSuchNet")
        # The build slot must have been released: a retry fails cleanly
        # (rather than deadlocking on a never-set build event) and valid
        # models still load.
        with pytest.raises(KeyError):
            pool.get("NoSuchNet")
        assert pool.get("MicroCNN") is pool.get("MicroCNN")


class TestSplitBatchOutput:
    def test_splits_rows_preserving_metadata(self):
        data = np.arange(24).reshape(6, 4)
        tensor = Tensor(data, Layout.NHWC, packed=True, true_channels=3)
        parts = split_batch_output(tensor, [1, 2, 3])
        assert [p.data.shape[0] for p in parts] == [1, 2, 3]
        assert all(p.packed and p.true_channels == 3 for p in parts)
        np.testing.assert_array_equal(parts[2].data, data[3:])
        assert parts[0].data.base is not None  # default: zero-copy views
        owned = split_batch_output(tensor, [1, 2, 3], copy=True)
        assert all(p.data.base is None for p in owned)
        np.testing.assert_array_equal(owned[2].data, data[3:])

    def test_validates_sizes(self):
        tensor = Tensor(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            split_batch_output(tensor, [1, 2])
        with pytest.raises(ValueError):
            split_batch_output(tensor, [4, 0])


@pytest.fixture(scope="module")
def shared_pool():
    return ModelPool()


class TestInferenceService:
    def test_outputs_bit_identical_to_unbatched_run(self, shared_pool):
        engine = PhoneBitEngine()
        network = shared_pool.get("MicroCNN")
        rng = np.random.default_rng(7)
        images = rng.integers(0, 256, size=(6, 8, 8, 3)).astype(np.uint8)
        with InferenceService(pool=shared_pool, engine=engine,
                              max_batch_size=4, max_wait_ms=5.0,
                              cache_capacity=0) as service:
            futures = service.submit_batch("MicroCNN", images)
            served = np.stack([f.result(timeout=WAIT_S) for f in futures])
        reference = np.stack(
            [engine.run(network, images[i:i + 1]).output.data[0]
             for i in range(6)]
        )
        np.testing.assert_array_equal(served, reference)

    def test_cache_hit_short_circuits_the_scheduler(self, shared_pool):
        with InferenceService(pool=shared_pool, max_batch_size=4,
                              max_wait_ms=1.0, cache_capacity=16) as service:
            rng = np.random.default_rng(3)
            image = rng.integers(0, 256, size=(8, 8, 3)).astype(np.uint8)
            first = service.infer("MicroCNN", image, timeout=WAIT_S)
            batches_after_first = service.report("MicroCNN").scheduler.batch_count
            second = service.infer("MicroCNN", image, timeout=WAIT_S)
            report = service.report("MicroCNN")
            np.testing.assert_array_equal(first, second)
            assert report.cache_hits == 1
            assert report.scheduler.batch_count == batches_after_first
            assert report.cache is not None and report.cache.hits == 1

    def test_cache_can_be_disabled(self, shared_pool):
        with InferenceService(pool=shared_pool, cache_capacity=0,
                              max_wait_ms=1.0) as service:
            assert service.cache is None
            image = np.zeros((8, 8, 3), dtype=np.uint8)
            service.infer("MicroCNN", image, timeout=WAIT_S)
            service.infer("MicroCNN", image, timeout=WAIT_S)
            report = service.report("MicroCNN")
            assert report.cache_hits == 0 and report.cache is None
            assert report.requests == 2

    def test_rejects_wrong_input_shape(self, shared_pool):
        with InferenceService(pool=shared_pool, max_wait_ms=1.0) as service:
            with pytest.raises(ValueError, match="expected one image"):
                service.submit("MicroCNN", np.zeros((4, 4, 3), dtype=np.uint8))

    def test_close_drains_pending_requests(self, shared_pool):
        service = InferenceService(pool=shared_pool, max_batch_size=64,
                                   max_wait_ms=60_000.0, cache_capacity=0)
        rng = np.random.default_rng(5)
        images = rng.integers(0, 256, size=(3, 8, 8, 3)).astype(np.uint8)
        futures = service.submit_batch("MicroCNN", images)
        service.close()  # drain-on-shutdown
        for future in futures:
            assert future.result(timeout=WAIT_S).shape == (10,)
        assert service.report("MicroCNN").scheduler.trigger_counts["drain"] >= 1

    def test_submit_after_close_rejected(self, shared_pool):
        service = InferenceService(pool=shared_pool, max_wait_ms=1.0)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit("MicroCNN", np.zeros((8, 8, 3), dtype=np.uint8))

    def test_flush_of_idle_model_is_a_noop(self, shared_pool):
        with InferenceService(pool=shared_pool, max_wait_ms=1.0) as service:
            service.flush("MicroCNN")  # valid model, no traffic yet
            service.flush()  # flush-all on an idle service

    def test_responses_are_read_only(self, shared_pool):
        with InferenceService(pool=shared_pool, max_batch_size=4,
                              max_wait_ms=1.0, cache_capacity=16) as service:
            rng = np.random.default_rng(17)
            image = rng.integers(0, 256, size=(8, 8, 3)).astype(np.uint8)
            fresh = service.infer("MicroCNN", image, timeout=WAIT_S)
            hit = service.infer("MicroCNN", image, timeout=WAIT_S)
            for out in (fresh, hit):
                with pytest.raises(ValueError):
                    out[0] = 0.0

    def test_report_fields_and_rendering(self, shared_pool):
        with InferenceService(pool=shared_pool, max_batch_size=4,
                              max_wait_ms=1.0) as service:
            rng = np.random.default_rng(9)
            images = rng.integers(0, 256, size=(5, 8, 8, 3)).astype(np.uint8)
            futures = service.submit_batch("MicroCNN", images)
            [f.result(timeout=WAIT_S) for f in futures]
            report = service.report("MicroCNN")
        assert report.requests == 5
        assert report.latency.count == 5
        assert report.requests_per_s > 0
        record = report.to_record()
        assert record["requests"] == 5
        assert set(record["flush_triggers"]) == {"size", "timeout", "flush", "drain"}
        text = report.table()
        assert "Serving report" in text and "MicroCNN" in text
        assert "latency p99 (ms)" in text
        with pytest.raises(KeyError):
            service.report("VGG16")

    def test_model_names_are_canonicalized(self, shared_pool):
        # "microcnn" and "MicroCNN" must share one scheduler, one set of
        # metrics and one report — not split traffic across two workers.
        with InferenceService(pool=shared_pool, max_batch_size=4,
                              max_wait_ms=1.0, cache_capacity=16) as service:
            rng = np.random.default_rng(21)
            image = rng.integers(0, 256, size=(8, 8, 3)).astype(np.uint8)
            service.infer("microcnn", image, timeout=WAIT_S)
            service.infer("MICROCNN", image, timeout=WAIT_S)  # cache hit
            report = service.report("MicroCNN")
            assert report.requests == 2
            assert (report.cache_hits, report.cache_misses) == (1, 1)
            assert report.cache_hit_rate == pytest.approx(0.5)
            assert list(service.reports()) == ["MicroCNN"]

    def test_models_sharing_a_network_name_do_not_share_cache_entries(self):
        # A prod and a canary build of the same architecture wrap networks
        # with identical .name; the response cache must still keep them
        # apart (it is namespaced by pool key, not network name).
        from repro.models import micro_cnn_config
        from repro.models.zoo import build_phonebit_network

        pool = ModelPool()
        prod = build_phonebit_network(micro_cnn_config(), rng=1)
        canary = build_phonebit_network(micro_cnn_config(), rng=2)
        assert prod.name == canary.name  # the hazard under test
        pool.register(prod, name="prod")
        pool.register(canary, name="canary")
        rng = np.random.default_rng(22)
        image = rng.integers(0, 256, size=(8, 8, 3)).astype(np.uint8)
        with InferenceService(pool=pool, max_batch_size=4, max_wait_ms=1.0,
                              cache_capacity=16) as service:
            out_prod = service.infer("prod", image, timeout=WAIT_S)
            out_canary = service.infer("canary", image, timeout=WAIT_S)
            assert service.report("canary").cache_hits == 0
        # Different weights: the outputs must differ, proving the canary
        # answer did not come from prod's cache entry.
        assert not np.array_equal(out_prod, out_canary)

    def test_concurrent_clients_one_model(self, shared_pool):
        engine = PhoneBitEngine()
        network = shared_pool.get("MicroCNN")
        rng = np.random.default_rng(11)
        images = rng.integers(0, 256, size=(12, 8, 8, 3)).astype(np.uint8)
        reference = np.stack(
            [engine.run(network, images[i:i + 1]).output.data[0]
             for i in range(12)]
        )
        results = {}
        with InferenceService(pool=shared_pool, engine=engine,
                              max_batch_size=4, max_wait_ms=2.0,
                              cache_capacity=0) as service:
            def client(start, stop):
                futures = [
                    (i, service.submit("MicroCNN", images[i]))
                    for i in range(start, stop)
                ]
                for i, future in futures:
                    results[i] = future.result(timeout=WAIT_S)

            threads = [
                threading.Thread(target=client, args=(0, 6)),
                threading.Thread(target=client, args=(6, 12)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=WAIT_S)
                assert not thread.is_alive()
        served = np.stack([results[i] for i in range(12)])
        np.testing.assert_array_equal(served, reference)


class TestLoadgen:
    def test_synthetic_images_shapes_and_reuse(self):
        unique = synthetic_images((8, 8, 3), 10, seed=1, unique=True)
        assert unique.shape == (10, 8, 8, 3) and unique.dtype == np.uint8
        tiled = synthetic_images((8, 8, 3), 10, seed=1, unique=False)
        assert tiled.shape == (10, 8, 8, 3)
        # The tiled variant repeats inputs, giving the cache something to hit.
        assert len({t.tobytes() for t in tiled}) < 10

    def test_closed_loop(self, shared_pool):
        with InferenceService(pool=shared_pool, max_batch_size=8,
                              max_wait_ms=2.0, cache_capacity=0) as service:
            images = synthetic_images((8, 8, 3), 8, seed=2)
            result = run_closed_loop(service, "MicroCNN", images)
        assert result.outputs.shape == (8, 10)
        assert result.offered_rps is None
        assert result.achieved_rps > 0
        assert result.report.requests == 8
        assert "closed loop" in result.table()

    def test_open_loop(self, shared_pool):
        with InferenceService(pool=shared_pool, max_batch_size=8,
                              max_wait_ms=2.0, cache_capacity=0) as service:
            images = synthetic_images((8, 8, 3), 6, seed=3)
            result = run_open_loop(service, "MicroCNN", images,
                                   offered_rps=500.0, seed=3)
        assert result.outputs.shape == (6, 10)
        assert result.offered_rps == 500.0
        assert result.report.requests == 6

    def test_open_loop_rejects_bad_rate(self, shared_pool):
        with InferenceService(pool=shared_pool, max_wait_ms=1.0) as service:
            with pytest.raises(ValueError):
                run_open_loop(service, "MicroCNN",
                              synthetic_images((8, 8, 3), 2), offered_rps=0.0)
