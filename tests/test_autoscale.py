"""Elastic scheduling tests: router slot accounting, per-model pinning,
the pure autoscaler core, and cluster-level scale events mid-traffic.

The hypothesis property test drives randomized acquire / release /
remove / re-register / force sequences against the router's accounting
invariant (``dispatched == completed + Σ outstanding``, never negative).
It fails on the pre-fix router — which counted a completion for releases
that returned no slot and let a dead incarnation's late release steal a
slot from a re-registered worker id — and passes on the generation-scoped
one.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    Autoscaler,
    AutoscaleConfig,
    AutoscaleSignals,
    ClusterOverloadError,
    ClusterService,
    FakeClock,
    LeastOutstandingRouter,
    QuarantinePolicy,
    pin_counts_from_shares,
    rendezvous_score,
    run_spike_load,
)
from repro.serving.loadgen import run_closed_loop, synthetic_images

WAIT_S = 60.0


# --------------------------------------------------------------------------
# Router slot accounting (the bugfixes)
# --------------------------------------------------------------------------
class TestRouterAccounting:
    def test_release_without_held_slot_counts_nothing(self):
        router = LeastOutstandingRouter()
        router.add_worker("a")
        assert router.release("a") is False
        stats = router.stats()
        assert stats.completed == 0
        assert stats.outstanding == 0

    def test_double_release_counts_one_completion(self):
        router = LeastOutstandingRouter()
        router.add_worker("a")
        assert router.acquire("M") == "a"
        assert router.release("a") is True
        assert router.release("a") is False
        stats = router.stats()
        assert stats.dispatched == 1
        assert stats.completed == 1
        assert stats.outstanding == 0

    def test_release_scoped_to_dead_generation_is_noop(self):
        router = LeastOutstandingRouter()
        gen1 = router.add_worker("a")
        assert router.acquire("M") == "a"
        # Crash: the in-flight slot is credited by the removal...
        router.remove_worker("a")
        gen2 = router.add_worker("a")  # ...and the same id re-registers.
        assert gen2 > gen1
        # The dead incarnation's late answer must not steal a slot from
        # the new incarnation.
        assert router.release("a", generation=gen1) is False
        assert router.outstanding("a") == 0
        stats = router.stats()
        assert stats.dispatched == stats.completed + stats.outstanding

    def test_release_with_current_generation_returns_slot(self):
        router = LeastOutstandingRouter()
        generation = router.add_worker("a")
        assert router.acquire("M") == "a"
        assert router.release("a", generation=generation) is True
        assert router.outstanding("a") == 0

    def test_reregistering_live_worker_keeps_generation_and_slots(self):
        router = LeastOutstandingRouter()
        generation = router.add_worker("a", models=["M"])
        assert router.acquire("M") == "a"
        assert router.add_worker("a", models=["M", "N"]) == generation
        assert router.outstanding("a") == 1

    def test_retry_after_uses_the_models_eligible_set(self):
        router = LeastOutstandingRouter(max_outstanding=8,
                                        pin_counts={"Pinned": 2})
        for i in range(8):
            router.add_worker(f"w{i}", models=["Pinned", "Free"])
        fleet = router.retry_after_s(2.0)
        free = router.retry_after_s(2.0, model="Free")
        pinned = router.retry_after_s(2.0, model="Pinned")
        assert free == pytest.approx(fleet)
        # Pinned to 2 of 8 workers: the drain horizon is 4x longer.
        assert pinned == pytest.approx(4.0 * fleet)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["add", "acquire", "force", "release",
                             "stale", "remove",
                             "fail", "latency", "hb"]),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=80,
    ))
    def test_accounting_invariant_over_random_churn(self, ops):
        # The quarantine policy is deliberately hair-triggered so health
        # events actually flip workers in and out of quarantine during
        # churn — slot accounting must be untouched by any of it.
        router = LeastOutstandingRouter(
            max_outstanding=2,
            quarantine=QuarantinePolicy(min_samples=2, latency_factor=1.5,
                                        max_consecutive_failures=2,
                                        probation_heartbeats=1))
        held = []  # (worker, generation) per successful unreleased acquire
        for op, i in ops:
            worker_id = f"w{i}"
            if op == "add":
                router.add_worker(worker_id)
            elif op in ("acquire", "force"):
                worker = router.acquire("M", force=(op == "force"))
                if worker is not None:
                    held.append((worker, router.generation(worker)))
            elif op == "release" and held:
                worker, generation = held.pop(i % len(held))
                returned = router.release(worker, generation=generation)
                # A slot comes back iff its incarnation is still the
                # registered one; dead-incarnation slots were credited by
                # remove_worker and must not come back again.
                assert returned == (router.generation(worker) == generation)
            elif op == "stale":
                # Generations start at 1, so this can never match.
                assert router.release(worker_id, generation=-1) is False
            elif op == "remove":
                router.remove_worker(worker_id)
            elif op == "fail":
                router.record_failure(worker_id)
            elif op == "latency":
                # i spreads the latencies so some workers degrade past
                # the fleet median and get quarantined.
                router.record_completion(worker_id, 0.01 * (1 + 10 * i))
            elif op == "hb":
                router.record_clean_heartbeat(worker_id)
            stats = router.stats()
            live = sum(1 for worker, generation in held
                       if router.generation(worker) == generation)
            assert stats.outstanding == live
            assert stats.dispatched == stats.completed + stats.outstanding
            assert all(router.outstanding(w) >= 0 for w in router.workers())
            # Health bookkeeping never leaks beyond the registered fleet
            # and never empties a model's candidate set.
            assert set(router.quarantined_workers()) <= set(router.workers())
            if router.workers():
                assert router.eligible_workers("M")


# --------------------------------------------------------------------------
# Per-model pinning eligibility
# --------------------------------------------------------------------------
class TestPinning:
    def test_eligible_is_rendezvous_top_k_of_declaring_workers(self):
        router = LeastOutstandingRouter(pin_counts={"M": 2})
        ids = [f"w{i}" for i in range(5)]
        for worker in ids:
            router.add_worker(worker, models=["M"])
        expected = sorted(
            sorted(ids, key=lambda w: rendezvous_score("M", w),
                   reverse=True)[:2]
        )
        assert router.eligible_workers("M") == expected
        for _ in range(16):
            assert router.acquire("M") in expected
            # drain so the bound never sheds
            for worker in expected:
                router.release(worker)

    def test_unpinned_model_routes_to_every_declaring_worker(self):
        router = LeastOutstandingRouter(pin_counts={"M": 1})
        for i in range(4):
            router.add_worker(f"w{i}", models=["M", "Free"])
        assert len(router.eligible_workers("Free")) == 4
        assert len(router.eligible_workers("M")) == 1

    def test_undeclared_worker_is_never_eligible_even_forced(self):
        router = LeastOutstandingRouter(max_outstanding=2,
                                        pin_counts={"M": 1})
        router.add_worker("holds", models=["M"])
        router.add_worker("lacks", models=["Other"])
        assert router.eligible_workers("M") == ["holds"]
        # Force ignores the admission bound but never the declared-model
        # restriction: a worker without the artifact cannot serve it.
        for _ in range(5):
            assert router.acquire("M", force=True) == "holds"

    def test_force_widens_past_the_pinned_top_k(self):
        router = LeastOutstandingRouter(max_outstanding=1,
                                        pin_counts={"M": 1})
        for i in range(3):
            router.add_worker(f"w{i}", models=["M"])
        (pinned,) = router.eligible_workers("M")
        assert router.acquire("M") == pinned
        assert router.acquire("M") is None  # bound reached: shed
        forced = router.acquire("M", force=True)
        assert forced is not None and forced != pinned

    def test_serve_anything_worker_is_a_candidate_for_pinned_models(self):
        router = LeastOutstandingRouter(pin_counts={"M": 1})
        router.add_worker("anything")  # models=None: serves any model
        assert router.eligible_workers("M") == ["anything"]

    def test_add_worker_model_expands_the_declaration(self):
        router = LeastOutstandingRouter()
        router.add_worker("a", models=["M"])
        assert router.eligible_workers("N") == []
        router.add_worker_model("a", "N")
        assert router.eligible_workers("N") == ["a"]
        assert router.worker_models("a") == {"M", "N"}

    def test_pin_counts_from_shares_is_proportional_and_clamped(self):
        counts = pin_counts_from_shares(
            {"Hot": 3.0, "Cold": 1.0}, workers=4)
        assert counts == {"Hot": 3, "Cold": 1}
        # A zero-share model still gets min_workers; nothing exceeds the
        # fleet.
        counts = pin_counts_from_shares({"A": 1.0, "B": 0.0}, workers=8)
        assert counts == {"A": 8, "B": 1}
        with pytest.raises(ValueError):
            pin_counts_from_shares({"A": 1.0}, workers=0)

    def test_set_pin_counts_rejects_nonpositive(self):
        router = LeastOutstandingRouter()
        with pytest.raises(ValueError):
            router.set_pin_counts({"M": 0})


# --------------------------------------------------------------------------
# Pure autoscaler core
# --------------------------------------------------------------------------
def make_scaler(**overrides):
    clock = FakeClock()
    config = dict(min_workers=1, max_workers=4, grow_consecutive=2,
                  shrink_consecutive=3, idle_utilization=0.25,
                  cooldown_s=1.0)
    config.update(overrides)
    return Autoscaler(AutoscaleConfig(**config), clock=clock), clock


def make_signals(workers=1, pending=0, dispatched=0, shed=0, outstanding=0,
                 window=8):
    return AutoscaleSignals(workers=workers, pending=pending,
                            dispatched=dispatched, shed=shed,
                            outstanding=outstanding, window=window)


class TestAutoscaler:
    def test_first_tick_arms_the_baseline_and_holds(self):
        scaler, _ = make_scaler()
        assert scaler.observe(make_signals(shed=100)) == "hold"

    def test_grow_requires_consecutive_shedding_ticks(self):
        scaler, clock = make_scaler(grow_consecutive=2)
        assert scaler.observe(make_signals(shed=0)) == "hold"  # arm
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=5)) == "hold"  # streak 1
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=9)) == "grow"  # streak 2

    def test_one_burst_then_quiet_does_not_grow(self):
        scaler, clock = make_scaler(grow_consecutive=2)
        scaler.observe(make_signals(shed=0))
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=5)) == "hold"
        clock.advance(1.0)
        # No new sheds: the streak resets, high utilization is not idle.
        assert scaler.observe(
            make_signals(shed=5, outstanding=8, window=8)) == "hold"
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=9)) == "hold"  # streak 1 again

    def test_cooldown_blocks_back_to_back_actions(self):
        scaler, clock = make_scaler(grow_consecutive=1, cooldown_s=10.0)
        scaler.observe(make_signals(shed=0))
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=1)) == "grow"
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=2)) == "hold"  # cooling down
        clock.advance(10.0)
        assert scaler.observe(make_signals(shed=3)) == "grow"

    def test_pending_spawn_holds_instead_of_growing_again(self):
        scaler, clock = make_scaler(grow_consecutive=1, cooldown_s=0.0)
        scaler.observe(make_signals(shed=0))
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=1, pending=1)) == "hold"
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=2, pending=0)) == "grow"

    def test_max_workers_bounds_growth(self):
        scaler, clock = make_scaler(max_workers=2, grow_consecutive=1,
                                    cooldown_s=0.0)
        scaler.observe(make_signals(workers=2, shed=0))
        clock.advance(1.0)
        assert scaler.observe(make_signals(workers=2, shed=5)) == "hold"

    def test_grow_budget_spends_and_refunds(self):
        scaler, clock = make_scaler(grow_consecutive=1, cooldown_s=0.0,
                                    grow_budget=1)
        scaler.observe(make_signals(shed=0))
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=1)) == "grow"
        assert scaler.grows_remaining == 0
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=2)) == "hold"  # budget spent
        scaler.refund_grow()  # the spawn failed to launch
        assert scaler.grows_remaining == 1
        clock.advance(1.0)
        assert scaler.observe(make_signals(shed=3)) == "grow"

    def test_shrink_after_sustained_idleness(self):
        scaler, clock = make_scaler(shrink_consecutive=3, cooldown_s=0.0)
        scaler.observe(make_signals(workers=2, window=16))
        for tick in range(3):
            clock.advance(1.0)
            decision = scaler.observe(
                make_signals(workers=2, window=16, outstanding=0))
            assert decision == ("shrink" if tick == 2 else "hold")

    def test_busy_tick_resets_the_idle_streak(self):
        scaler, clock = make_scaler(shrink_consecutive=2, cooldown_s=0.0,
                                    idle_utilization=0.25)
        scaler.observe(make_signals(workers=2, window=16))
        clock.advance(1.0)
        assert scaler.observe(
            make_signals(workers=2, window=16, outstanding=0)) == "hold"
        clock.advance(1.0)
        # Utilization 0.5 > 0.25: busy, streak resets.
        assert scaler.observe(
            make_signals(workers=2, window=16, outstanding=8)) == "hold"
        clock.advance(1.0)
        assert scaler.observe(
            make_signals(workers=2, window=16, outstanding=0)) == "hold"

    def test_min_workers_bounds_shrinking(self):
        scaler, clock = make_scaler(shrink_consecutive=1, cooldown_s=0.0)
        scaler.observe(make_signals(workers=1))
        for _ in range(5):
            clock.advance(1.0)
            assert scaler.observe(make_signals(workers=1)) == "hold"

    def test_events_record_both_actions(self):
        scaler, clock = make_scaler(grow_consecutive=1, shrink_consecutive=1,
                                    cooldown_s=0.0)
        scaler.observe(make_signals(workers=1, shed=0))
        clock.advance(1.0)
        scaler.observe(make_signals(workers=1, shed=4))
        clock.advance(1.0)
        scaler.observe(make_signals(workers=2, shed=4, window=16))
        assert [e.action for e in scaler.events] == ["grow", "shrink"]
        grow = scaler.events[0]
        assert (grow.workers_before, grow.workers_target) == (1, 2)
        assert grow.shed_delta == 4

    def test_signals_utilization_handles_zero_window(self):
        assert make_signals(window=0, outstanding=0).utilization == 0.0
        assert make_signals(window=0, outstanding=3).utilization == 1.0
        assert make_signals(window=8, outstanding=4).utilization == 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_workers=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(idle_utilization=1.5)
        with pytest.raises(ValueError):
            AutoscaleConfig(grow_budget=-1)
        with pytest.raises(ValueError):
            AutoscaleConfig(interval_s=0.0)


# --------------------------------------------------------------------------
# Cluster-level scale events and pinned fleets
# --------------------------------------------------------------------------
def make_cluster(**kwargs):
    kwargs.setdefault("models", ("MicroCNN",))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("max_batch_size", 16)
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    kwargs.setdefault("heartbeat_timeout_s", 5.0)
    return ClusterService(**kwargs)


def wait_for_worker_count(cluster, count, timeout_s=WAIT_S):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if len(cluster.router.workers()) == count:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"fleet never reached {count} workers; "
        f"router sees {cluster.router.workers()}"
    )


class TestClusterPinning:
    def test_pinned_fleet_attaches_only_assigned_models(self):
        with make_cluster(models=("MicroCNN", "TinyCNN"), workers=3,
                          pin_models={"MicroCNN": 1, "TinyCNN": 2}) as cluster:
            detail = cluster.worker_detail()
            assert len(detail) == 3
            micro = [w for w, d in detail.items() if "MicroCNN" in d["models"]]
            tiny = [w for w, d in detail.items() if "TinyCNN" in d["models"]]
            assert len(micro) == 1
            assert len(tiny) == 2
            assert len(cluster.router.eligible_workers("MicroCNN")) == 1
            assert len(cluster.router.eligible_workers("TinyCNN")) == 2
            # The fleet does not attach-everything: one model's top-K may
            # overlap the other's, but with 1+2 pins over 3 workers at
            # least one worker must hold a strict subset of the store.
            full = sum(h.nbytes for h in cluster.store.handles().values())
            attach_bytes = [d["attach_bytes"] for d in detail.values()]
            assert min(attach_bytes) < full
            assert sum(attach_bytes) < len(detail) * full
            # Pinned routing still answers bit-identically.
            images = synthetic_images((8, 8, 3), 24, seed=3)
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            run = run_closed_loop(cluster, "MicroCNN", images)
            assert np.array_equal(run.outputs, base.outputs)

    def test_unknown_pinned_model_raises(self):
        with pytest.raises(KeyError):
            make_cluster(pin_models={"NoSuchModel": 1})


class TestClusterScaleEvents:
    def test_scale_up_mid_traffic_is_bit_exact(self):
        with make_cluster(workers=1) as cluster:
            images = synthetic_images((8, 8, 3), 48, seed=5)
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            first = cluster.submit_batch("MicroCNN", images[:24])
            assert cluster.scale_up() == 1
            head = [f.result(timeout=WAIT_S) for f in first]
            wait_for_worker_count(cluster, 2)
            second = cluster.submit_batch("MicroCNN", images[24:])
            tail = [f.result(timeout=WAIT_S) for f in second]
            assert np.array_equal(np.stack(head + tail), base.outputs)

    def test_scale_down_drains_in_flight_work(self):
        with make_cluster(workers=3) as cluster:
            images = synthetic_images((8, 8, 3), 36, seed=6)
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            futures = cluster.submit_batch("MicroCNN", images)
            assert cluster.scale_down() == 1
            outputs = np.stack([f.result(timeout=WAIT_S) for f in futures])
            assert np.array_equal(outputs, base.outputs)
            wait_for_worker_count(cluster, 2)

    def test_scale_down_declines_below_the_floor(self):
        with make_cluster(workers=1) as cluster:
            assert cluster.scale_down() == 0
            assert len(cluster.router.workers()) == 1

    def test_autoscaler_grows_under_sustained_shedding(self):
        config = AutoscaleConfig(min_workers=1, max_workers=2,
                                 grow_consecutive=2, shrink_consecutive=10**6,
                                 cooldown_s=0.2, interval_s=0.05)
        with make_cluster(workers=1, max_outstanding=1,
                          autoscale=config) as cluster:
            images = synthetic_images((8, 8, 3), 4, seed=7)
            futures = []
            deadline = time.time() + WAIT_S
            while (time.time() < deadline
                   and len(cluster.router.workers()) < 2):
                try:
                    futures.append(
                        cluster.submit("MicroCNN", images[0], block=False))
                except ClusterOverloadError:
                    pass
                time.sleep(0.002)
            wait_for_worker_count(cluster, 2)
            assert any(e.action == "grow" for e in cluster.autoscale_events)
            for future in futures:
                future.result(timeout=WAIT_S)

    def test_autoscaler_shrinks_when_idle(self):
        config = AutoscaleConfig(min_workers=1, max_workers=2,
                                 grow_consecutive=10**6, shrink_consecutive=3,
                                 idle_utilization=0.5, cooldown_s=0.1,
                                 interval_s=0.05)
        with make_cluster(workers=2, autoscale=config) as cluster:
            wait_for_worker_count(cluster, 1)
            assert any(e.action == "shrink"
                       for e in cluster.autoscale_events)
            # The shrunk fleet still serves.
            images = synthetic_images((8, 8, 3), 8, seed=8)
            for future in cluster.submit_batch("MicroCNN", images):
                future.result(timeout=WAIT_S)

    def test_autoscale_clamps_initial_worker_count(self):
        config = AutoscaleConfig(min_workers=2, max_workers=3,
                                 grow_consecutive=10**6,
                                 shrink_consecutive=10**6)
        with make_cluster(workers=1, autoscale=config) as cluster:
            assert len(cluster.router.workers()) == 2


class TestSpikeLoad:
    def test_phases_account_offered_and_shed(self):
        with make_cluster(workers=1) as cluster:
            images = synthetic_images((8, 8, 3), 8, seed=9)
            result = run_spike_load(
                cluster, "MicroCNN", images,
                phases=[("warm", 50.0, 0.2), ("spike", 200.0, 0.2)],
            )
            assert [p.name for p in result.phases] == ["warm", "spike"]
            assert result.phase("spike").offered == result.phases[1].offered
            assert result.offered == sum(p.offered for p in result.phases)
            assert result.shed == sum(p.shed for p in result.phases)
            assert result.completed == result.offered - result.shed
            assert 0.0 <= result.phase("warm").shed_rate <= 1.0
            assert "spike" in result.table()

    def test_outputs_match_the_images_they_were_keyed_to(self):
        with make_cluster(workers=1) as cluster:
            images = synthetic_images((8, 8, 3), 4, seed=10)
            result = run_spike_load(
                cluster, "MicroCNN", images, phases=[("only", 100.0, 0.3)],
            )
            baseline = cluster.baseline_service()
            try:
                base = run_closed_loop(baseline, "MicroCNN", images)
            finally:
                baseline.close()
            assert result.outputs  # the run admitted something
            for index, row in result.outputs.items():
                assert np.array_equal(row, base.outputs[index])
