"""SLO-tiered admission + scenario-harness tests.

Three layers of contract:

* **Router tier order** — under any admission/release churn the router
  never sheds a higher SLO tier while a lower tier could still be
  admitted (property-based), and the slot-conservation invariant
  ``dispatched == completed + Σoutstanding`` survives class-tiered
  accounting.
* **Schedule determinism** — a compiled scenario is a pure function of
  ``(spec, seed)``: byte-identical on replay, per-tenant independent,
  and the loadgen arrival-core refactor left historical seeded
  schedules byte-identical.
* **Golden summaries** — each bundled scenario's seeded schedule
  summary is pinned under ``tests/golden/`` (regen with
  ``REPRO_REGEN_GOLDEN=1``).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.cluster import DEFAULT_SLO_POLICIES, SLOPolicy
from repro.serving.loadgen import (
    phased_poisson_offsets,
    poisson_offsets,
    run_arrival_schedule,
)
from repro.serving.router import (
    SLO_CLASSES,
    LeastOutstandingRouter,
    default_slo_reserves,
    validate_slo,
)
from repro.serving.scenarios import (
    BUNDLED_SCENARIOS,
    ClassSummary,
    ScenarioResult,
    ScenarioSpec,
    TenantSpec,
    TenantSummary,
    aggregate_passes,
    resolve_scenario,
    run_scenario,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))
GOLDEN_SEED = 1234


# ---------------------------------------------------------------------------
# SLO classes and reserves
# ---------------------------------------------------------------------------
class TestSLOClasses:
    def test_validate_slo_normalizes_and_rejects(self):
        assert validate_slo(None) == "standard"
        assert validate_slo("interactive") == "interactive"
        with pytest.raises(ValueError, match="unknown SLO class"):
            validate_slo("gold")

    def test_default_reserves_shape(self):
        reserves = default_slo_reserves(8)
        assert reserves == {"interactive": 0, "standard": 2, "batch": 5}
        # Monotone down-tier, interactive never withheld from itself.
        assert reserves["interactive"] <= reserves["standard"] <= reserves["batch"]
        assert reserves["batch"] < 8

    def test_default_reserves_tiny_window(self):
        # max_outstanding=1 leaves no room to withhold anything.
        assert default_slo_reserves(1) == {
            "interactive": 0, "standard": 0, "batch": 0}

    def test_reserves_validation(self):
        router = LeastOutstandingRouter(max_outstanding=4)
        with pytest.raises(ValueError, match="monotone"):
            router.set_slo_reserves({"interactive": 2, "standard": 1,
                                     "batch": 0})
        with pytest.raises(ValueError, match="unknown SLO class"):
            router.set_slo_reserves({"gold": 1})
        with pytest.raises(ValueError):
            router.set_slo_reserves({"batch": 4})  # >= max_outstanding

    def test_tiered_bounds_and_shed_order(self):
        router = LeastOutstandingRouter(
            max_outstanding=4,
            slo_reserves={"interactive": 0, "standard": 1, "batch": 3})
        router.add_worker("w0")
        bounds = router.slo_bounds()
        assert bounds == {"interactive": 4, "standard": 3, "batch": 1}
        # One outstanding request saturates the batch tier only.
        assert router.acquire("M", slo="batch") == "w0"
        assert router.acquire("M", slo="batch") is None
        assert router.acquire("M", slo="standard") == "w0"
        assert router.acquire("M", slo="standard") == "w0"
        assert router.acquire("M", slo="standard") is None
        assert router.acquire("M", slo="interactive") == "w0"
        assert router.acquire("M", slo="interactive") is None
        assert router.shed_by_class() == {
            "interactive": 1, "standard": 1, "batch": 1}
        # Requeues (force) bypass every bound: admitted work is never shed.
        assert router.acquire("M", force=True, slo="batch") == "w0"

    def test_retry_after_monotone_down_tier(self):
        router = LeastOutstandingRouter(
            max_outstanding=4,
            slo_reserves={"interactive": 0, "standard": 1, "batch": 3})
        router.add_worker("w0")
        delays = [router.retry_after_s(2.0, slo=slo) for slo in SLO_CLASSES]
        assert delays[0] < delays[1] < delays[2]

    @settings(max_examples=120, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["add", "acquire", "force", "release", "remove"]),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=80,
    ))
    def test_tier_order_and_conservation_over_random_churn(self, ops):
        router = LeastOutstandingRouter(
            max_outstanding=3,
            slo_reserves={"interactive": 0, "standard": 1, "batch": 2})
        bounds = router.slo_bounds()
        held = []  # (worker, generation)
        for op, tier, i in ops:
            slo = SLO_CLASSES[tier]
            worker_id = f"w{i}"
            if op == "add":
                router.add_worker(worker_id)
            elif op in ("acquire", "force"):
                worker = router.acquire("M", force=(op == "force"), slo=slo)
                if worker is not None:
                    held.append((worker, router.generation(worker)))
                elif router.workers():
                    # A shed at this tier means the whole fleet is at or
                    # above this tier's bound...
                    assert all(router.outstanding(w) >= bounds[slo]
                               for w in router.workers())
                    # ...so every *lower* tier must shed too: the router
                    # never sheds a higher tier while a lower tier could
                    # still take a non-reserved slot.
                    for lower in SLO_CLASSES[tier + 1:]:
                        assert router.acquire(
                            "M", slo=lower, record_shed=False) is None
            elif op == "release" and held:
                worker, generation = held.pop(i % len(held))
                router.release(worker, generation=generation)
            elif op == "remove":
                router.remove_worker(worker_id)
            stats = router.stats()
            live = sum(1 for worker, generation in held
                       if router.generation(worker) == generation)
            assert stats.outstanding == live
            assert stats.dispatched == stats.completed + stats.outstanding


class TestSLOPolicy:
    def test_defaults_cover_every_class(self):
        assert set(DEFAULT_SLO_POLICIES) == set(SLO_CLASSES)
        interactive = DEFAULT_SLO_POLICIES["interactive"]
        batch = DEFAULT_SLO_POLICIES["batch"]
        assert interactive.latency_budget_ms < batch.latency_budget_ms
        assert interactive.deadline_s is not None
        assert batch.deadline_s is None  # batch work is never dropped late
        assert interactive.hedge is True and batch.hedge is False

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown SLO class"):
            SLOPolicy(slo="gold", latency_budget_ms=10.0)
        with pytest.raises(ValueError):
            SLOPolicy(slo="batch", latency_budget_ms=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(slo="batch", latency_budget_ms=10.0, deadline_s=-1.0)
        with pytest.raises(ValueError):
            SLOPolicy(slo="batch", latency_budget_ms=10.0, max_attempts=0)


# ---------------------------------------------------------------------------
# arrival-core refactor: historical schedules stay byte-identical
# ---------------------------------------------------------------------------
class TestArrivalCore:
    def test_poisson_offsets_match_historical_inline_draw(self):
        # The flat open-loop generators always drew one vectorized batch
        # of exponential gaps and cumsum'ed a running deadline; the
        # shared core must replay those seeded schedules byte-for-byte.
        for seed, rps, count in [(0, 200.0, 64), (7, 50.0, 1), (123, 900.0, 257)]:
            historical = np.cumsum(
                np.random.default_rng(seed).exponential(1.0 / rps, size=count))
            current = poisson_offsets(np.random.default_rng(seed), rps, count)
            assert historical.tobytes() == current.tobytes()

    def test_phased_offsets_match_historical_spike_loop(self):
        # The spike loop drew gaps one at a time and discarded each
        # phase's final draw that crossed the phase boundary (clamping to
        # it) — draw-for-draw identical, including the discards.
        phases = [("warmup", 120.0, 0.5), ("spike", 800.0, 0.25),
                  ("recovery", 120.0, 0.5)]
        for seed in (0, 5, 99):
            rng = np.random.default_rng(seed)
            offsets, index = [], []
            deadline = 0.0
            for number, (_, rps, duration_s) in enumerate(phases):
                phase_end = deadline + float(duration_s)
                while True:
                    deadline += rng.exponential(1.0 / rps)
                    if deadline >= phase_end:
                        deadline = phase_end
                        break
                    offsets.append(deadline)
                    index.append(number)
            current_offsets, current_index = phased_poisson_offsets(
                np.random.default_rng(seed), phases)
            assert np.asarray(offsets).tobytes() == current_offsets.tobytes()
            assert np.array_equal(np.asarray(index), current_index)

    def test_rate_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_offsets(rng, 0.0, 4)
        with pytest.raises(ValueError):
            phased_poisson_offsets(rng, [("p", -1.0, 1.0)])

    def test_run_arrival_schedule_paces_and_indexes(self):
        seen = []
        t0 = run_arrival_schedule([0.0, 0.001, 0.002], seen.append)
        assert seen == [0, 1, 2]
        assert t0 > 0


# ---------------------------------------------------------------------------
# spec parsing
# ---------------------------------------------------------------------------
class TestSpecParsing:
    def test_inline_grammar(self):
        spec = ScenarioSpec.parse(
            "web,slo=interactive,curve=flash_crowd,rate=40,peak=160,"
            "at=0.3,width=0.2;"
            "mix,model=MicroCNN*3+TinyCNN,curve=burst,rate=20;"
            "jobs,slo=batch,rate=30,budget_ms=5000")
        web, mix, jobs = spec.tenants
        assert (web.slo, web.curve, web.peak_rps) == ("interactive",
                                                      "flash_crowd", 160.0)
        assert mix.models == (("MicroCNN", 3.0), ("TinyCNN", 1.0))
        assert jobs.budget_ms == 5000.0

    def test_json_round_trip_compiles_identically(self, tmp_path):
        spec = BUNDLED_SCENARIOS["multi_burst"]
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = ScenarioSpec.from_json(str(path))
        assert loaded.compile(11).digest() == spec.compile(11).digest()

    def test_resolve_bundled_file_and_inline(self, tmp_path):
        assert resolve_scenario("flash_crowd").name == "flash_crowd"
        path = tmp_path / "s.json"
        path.write_text(json.dumps(BUNDLED_SCENARIOS["diurnal"].to_dict()))
        assert resolve_scenario(str(path)).name == "diurnal"
        assert resolve_scenario("t,rate=5").tenants[0].rate_rps == 5.0

    @pytest.mark.parametrize("bad, match", [
        ("", "no tenants"),
        ("slo=interactive", "bare tenant name"),
        ("t,slo", "key=value"),
        ("t,slo=gold", "unknown SLO class"),
        ("t,curve=warp", "unknown arrival curve"),
        ("t,rate=-3", "rate_rps must be positive"),
        ("t,rate=9,peak=2", "peak_rps must be at least"),
        ("t,frobnicate=1", "unknown tenant key"),
        ("t,model=", "empty model entry"),
        ("a,rate=1;a,rate=2", "duplicate tenant names"),
    ])
    def test_malformed_specs_rejected(self, bad, match):
        with pytest.raises(ValueError, match=match):
            ScenarioSpec.parse(bad)

    def test_unknown_scenario_name_lists_bundled(self):
        with pytest.raises(ValueError, match="steady_mix"):
            resolve_scenario("definitely_not_a_scenario")

    def test_json_rejects_unknown_keys_and_versions(self):
        with pytest.raises(ValueError, match="unknown tenant keys"):
            ScenarioSpec.from_json(
                {"name": "x", "tenants": [{"name": "t", "oops": 1}]})
        with pytest.raises(ValueError, match="unsupported scenario version"):
            ScenarioSpec.from_json(
                {"name": "x", "version": 99,
                 "tenants": [{"name": "t"}]})


# ---------------------------------------------------------------------------
# schedule determinism
# ---------------------------------------------------------------------------
class TestScheduleDeterminism:
    @pytest.mark.parametrize("name", sorted(BUNDLED_SCENARIOS))
    def test_same_seed_byte_identical(self, name):
        spec = BUNDLED_SCENARIOS[name]
        first = spec.compile(42)
        second = spec.compile(42)
        for a, b in zip(first.tenants, second.tenants):
            assert a.times.tobytes() == b.times.tobytes()
            assert a.model_index.tobytes() == b.model_index.tobytes()
        assert first.digest() == second.digest()
        assert first.digest() != spec.compile(43).digest()

    def test_tenant_child_streams_are_independent(self):
        # Dropping a later tenant must not perturb an earlier tenant's
        # schedule: each tenant owns an rng child stream keyed by its
        # index, exactly like FaultPlan's per-rule streams.
        full = BUNDLED_SCENARIOS["steady_mix"]
        truncated = ScenarioSpec(name=full.name, tenants=full.tenants[:1],
                                 duration_s=full.duration_s)
        a = full.compile(7).tenants[0]
        b = truncated.compile(7).tenants[0]
        assert a.times.tobytes() == b.times.tobytes()
        assert a.model_index.tobytes() == b.model_index.tobytes()

    def test_merged_is_time_ordered_and_complete(self):
        schedule = BUNDLED_SCENARIOS["flash_crowd"].compile(3)
        offsets, tenant_index, model_names = schedule.merged()
        assert len(offsets) == schedule.offered == len(model_names)
        assert np.all(np.diff(offsets) >= 0)
        assert set(tenant_index) <= set(range(len(schedule.tenants)))

    def test_burst_correlates_model_mix_with_window(self):
        schedule = BUNDLED_SCENARIOS["multi_burst"].compile(7)
        tenant = schedule.tenants[0]
        spec = tenant.tenant
        start = spec.at * schedule.duration_s
        end = start + spec.width * schedule.duration_s
        outside = (tenant.times < start) | (tenant.times >= end)
        # Only the primary model outside the window; the full mix inside.
        assert np.all(tenant.model_index[outside] == 0)
        assert set(tenant.model_index[~outside]) == {0, 1}

    def test_slow_drip_never_clumps(self):
        schedule = BUNDLED_SCENARIOS["slow_drip"].compile(5)
        drip = schedule.tenants[0]
        spacing = schedule.duration_s / drip.offered
        # Jitter is bounded to ±25% of the spacing, so consecutive
        # arrivals can never be closer than half a spacing.
        assert np.all(np.diff(drip.times) >= 0.5 * spacing - 1e-12)

    def test_rate_scale_and_duration_reshape_the_schedule(self):
        spec = BUNDLED_SCENARIOS["steady_mix"]
        base = spec.compile(3)
        doubled = spec.compile(3, rate_scale=2.0)
        assert doubled.offered > 1.5 * base.offered
        shorter = spec.compile(3, duration_s=1.0)
        assert shorter.offered < base.offered
        with pytest.raises(ValueError):
            spec.compile(3, rate_scale=0.0)
        with pytest.raises(ValueError):
            spec.compile(3, duration_s=-1.0)


# ---------------------------------------------------------------------------
# golden schedule summaries
# ---------------------------------------------------------------------------
def current_schedule_summaries() -> dict:
    return {name: spec.compile(GOLDEN_SEED).summary()
            for name, spec in BUNDLED_SCENARIOS.items()}


class TestGoldenScenarioSummaries:
    def test_bundled_summaries_match_golden(self):
        current = current_schedule_summaries()
        path = GOLDEN_DIR / "scenario_summaries.json"
        if REGEN:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(
                json.dumps(current, indent=2, sort_keys=True) + "\n")
        if not path.exists():
            pytest.fail(f"golden file {path} is missing; generate it with "
                        "REPRO_REGEN_GOLDEN=1")
        golden = json.loads(path.read_text())
        assert golden == current

    def test_golden_covers_every_bundled_scenario(self):
        golden = json.loads(
            (GOLDEN_DIR / "scenario_summaries.json").read_text())
        assert set(golden) == set(BUNDLED_SCENARIOS)
        for name, summary in golden.items():
            assert summary["offered"] == sum(
                t["offered"] for t in summary["tenants"]), name
            assert summary["offered"] == sum(
                summary["per_class"].values()), name


# ---------------------------------------------------------------------------
# pass aggregation (no cluster needed)
# ---------------------------------------------------------------------------
def _result(seed: int, attainment_pairs) -> ScenarioResult:
    tenants, classes = [], []
    for slo, (offered, within, shed) in attainment_pairs.items():
        completed = offered - shed
        tenants.append(TenantSummary(
            tenant=f"t-{slo}", slo=slo, offered=offered, completed=completed,
            shed=shed, deadline_expired=0, failed=0, within_budget=within,
            budget_ms=100.0, p50_ms=1.0, p99_ms=2.0, goodput_rps=1.0))
        classes.append(ClassSummary(
            slo=slo, offered=offered, completed=completed, shed=shed,
            deadline_expired=0, failed=0, within_budget=within,
            shed_share=0.0))
    return ScenarioResult(
        scenario="synthetic", seed=seed, duration_s=1.0, rate_scale=1.0,
        digest="0" * 64, wall_s=1.0, tenants=tuple(tenants),
        classes=tuple(classes), bit_identical=True, model_shares={},
        pin_suggestion=None, pins_applied=None, retries=0, hedges=0,
        respawns=0)


class TestPassAggregation:
    def test_aggregates_mean_min_max_per_class(self):
        results = [
            _result(0, {"interactive": (100, 90, 0), "batch": (50, 25, 25)}),
            _result(1, {"interactive": (100, 100, 0), "batch": (50, 50, 0)}),
        ]
        aggregates = {a.slo: a for a in aggregate_passes(results)}
        interactive = aggregates["interactive"]
        assert interactive.passes == 2
        assert interactive.offered == 200
        assert interactive.attainment_min == pytest.approx(0.9)
        assert interactive.attainment_max == pytest.approx(1.0)
        assert interactive.attainment_mean == pytest.approx(0.95)
        assert aggregates["batch"].shed == 25

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_passes([])


# ---------------------------------------------------------------------------
# end-to-end: scenario runner against a live cluster
# ---------------------------------------------------------------------------
class TestScenarioRunner:
    def test_steady_mix_end_to_end(self):
        spec = BUNDLED_SCENARIOS["steady_mix"]
        result = run_scenario(spec, seed=3, workers=2, duration_s=1.0,
                              pin_models={"MicroCNN": 1},
                              rebalance_pins=True)
        # Lossless accounting per tenant: every arrival lands in exactly
        # one bucket.
        for tenant in result.tenants:
            assert tenant.offered == (tenant.completed + tenant.shed +
                                      tenant.deadline_expired + tenant.failed)
        assert result.offered == spec.compile(3, duration_s=1.0).offered
        assert result.digest == spec.compile(3, duration_s=1.0).digest()
        # Completed outputs match the single-process engine bit-for-bit.
        assert result.bit_identical
        assert {t.slo for t in result.tenants} == set(SLO_CLASSES)
        assert result.class_summary("interactive").offered > 0
        # Measured traffic feeds the pinning planner (ROADMAP item 1
        # leftover): live shares in, a pin layout out.
        assert result.model_shares.get("MicroCNN", 0) > 0
        assert result.pin_suggestion is not None
        assert result.pins_applied is not None
        assert "MicroCNN" in result.pins_applied
        # The rendered tables carry the per-class contract.
        rendered = result.table()
        assert "interactive" in rendered and "shed share %" in rendered
