"""Tests for pooling, dense, normalization and activation layers."""

import numpy as np
import pytest

from repro.core import bitpack
from repro.core.binarize import bits_to_values
from repro.core.branchless import branchless_binarize
from repro.core.fusion import BatchNormParams, compute_threshold
from repro.core.layers import (
    AvgPool2d,
    BatchNorm2d,
    Binarize,
    BinaryDense,
    Dense,
    Flatten,
    MaxPool2d,
    Relu,
    Softmax,
)
from repro.core.tensor import Tensor


class TestMaxPool:
    def test_float_pooling(self, rng):
        x = rng.normal(size=(1, 4, 4, 3)).astype(np.float32)
        out = MaxPool2d(2).forward(Tensor(x))
        assert out.shape == (1, 2, 2, 3)
        assert out.data[0, 0, 0, 0] == x[0, :2, :2, 0].max()

    def test_packed_pooling_equals_float_pooling_on_values(self, rng):
        bits = rng.integers(0, 2, size=(1, 4, 4, 20), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, axis=3)
        pooled_packed = MaxPool2d(2).forward(Tensor(packed, packed=True, true_channels=20))
        pooled_bits = bitpack.unpack_bits(pooled_packed.data, 20, axis=-1)

        values = bits_to_values(bits)
        pooled_values = MaxPool2d(2).forward(Tensor(values))
        np.testing.assert_array_equal(bits_to_values(pooled_bits), pooled_values.data)

    def test_padding_preserves_resolution(self, rng):
        bits = rng.integers(0, 2, size=(1, 13, 13, 8), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, axis=3)
        out = MaxPool2d(3, stride=1, padding=1).forward(
            Tensor(packed, packed=True, true_channels=8)
        )
        assert out.shape[1:3] == (13, 13)

    def test_float_padding_uses_minus_infinity(self):
        x = -np.ones((1, 2, 2, 1), dtype=np.float32)
        out = MaxPool2d(2, stride=1, padding=1).forward(Tensor(x))
        # Every window contains at least one real -1; padding never wins.
        assert out.data.max() == -1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2d(0)
        with pytest.raises(ValueError):
            MaxPool2d(2, stride=0)
        with pytest.raises(ValueError):
            MaxPool2d(2, padding=-1)

    def test_output_shape(self):
        assert MaxPool2d(3, 2).output_shape((55, 55, 96)) == (27, 27, 96)


class TestAvgPool:
    def test_average(self, rng):
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        out = AvgPool2d(2).forward(Tensor(x))
        np.testing.assert_allclose(out.data[0, 0, 0], x[0, :2, :2].mean(axis=(0, 1)),
                                   rtol=1e-6)

    def test_rejects_packed(self):
        with pytest.raises(ValueError):
            AvgPool2d(2).forward(Tensor(np.zeros((1, 2, 2, 1), dtype=np.uint64),
                                        packed=True, true_channels=4))


class TestBinaryDense:
    def test_matches_manual_reference(self, rng, random_batchnorm):
        bn = random_batchnorm(12, seed=5)
        layer = BinaryDense(40, 12, batchnorm=bn, rng=7)
        bits = rng.integers(0, 2, size=(3, 40), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, axis=1)
        out = layer.forward(Tensor(packed, packed=True, true_channels=40))

        x1 = (bits_to_values(bits) @ bits_to_values(layer.weight_bits)).astype(np.int64)
        expected = branchless_binarize(x1, compute_threshold(bn), bn.gamma)
        np.testing.assert_array_equal(
            bitpack.unpack_bits(out.data, 12, axis=1), expected
        )

    def test_output_binary_false_returns_float(self, rng):
        layer = BinaryDense(16, 4, output_binary=False, rng=1)
        out = layer.forward(Tensor(rng.normal(size=(2, 16)).astype(np.float32)))
        assert not out.packed and out.dtype == np.float32

    def test_feature_mismatch_rejected(self, rng):
        layer = BinaryDense(16, 4, rng=1)
        with pytest.raises(ValueError):
            layer.forward(Tensor(rng.normal(size=(2, 20)).astype(np.float32)))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            BinaryDense(0, 4)

    def test_param_count(self):
        layer = BinaryDense(100, 10, rng=0)
        count = layer.param_count()
        assert count.binary == 1000 + 10
        assert count.float32 == 10


class TestDense:
    def test_matches_matmul(self, rng):
        layer = Dense(8, 5, rng=3)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        out = layer.forward(Tensor(x))
        expected = x.astype(np.float64) @ layer.weights.astype(np.float64) + layer.bias
        np.testing.assert_allclose(out.data, expected, rtol=1e-5, atol=1e-5)

    def test_consumes_packed_input_as_plus_minus_one(self, rng):
        layer = Dense(24, 3, rng=2)
        bits = rng.integers(0, 2, size=(2, 24), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, axis=1)
        out_packed = layer.forward(Tensor(packed, packed=True, true_channels=24))
        out_values = layer.forward(Tensor(bits_to_values(bits)))
        np.testing.assert_allclose(out_packed.data, out_values.data, rtol=1e-5)

    def test_softmax_activation_sums_to_one(self, rng):
        layer = Dense(6, 4, activation="softmax", rng=5)
        out = layer.forward(Tensor(rng.normal(size=(3, 6)).astype(np.float32)))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(3), rtol=1e-5)

    def test_relu_activation(self, rng):
        layer = Dense(6, 4, activation="relu", rng=5)
        out = layer.forward(Tensor(rng.normal(size=(3, 6)).astype(np.float32)))
        assert out.data.min() >= 0

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            Dense(4, 2, activation="swish")


class TestBatchNormLayer:
    def test_identity(self, rng):
        layer = BatchNorm2d.identity(5)
        x = rng.normal(size=(2, 3, 3, 5)).astype(np.float32)
        np.testing.assert_allclose(layer.forward(Tensor(x)).data, x, rtol=1e-4, atol=1e-4)

    def test_channel_mismatch_rejected(self):
        layer = BatchNorm2d.identity(5)
        with pytest.raises(ValueError):
            layer.output_shape((4, 4, 3))

    def test_rejects_packed(self):
        layer = BatchNorm2d.identity(4)
        with pytest.raises(ValueError):
            layer.forward(Tensor(np.zeros((1, 2, 2, 1), dtype=np.uint64),
                                 packed=True, true_channels=4))

    def test_param_count(self):
        assert BatchNorm2d.identity(8).param_count().float32 == 32


class TestActivationsAndFlatten:
    def test_binarize_packs_channels(self, rng):
        x = rng.normal(size=(1, 4, 4, 20)).astype(np.float32)
        out = Binarize().forward(Tensor(x))
        assert out.packed and out.true_channels == 20
        bits = bitpack.unpack_bits(out.data, 20, axis=-1)
        np.testing.assert_array_equal(bits, (x >= 0).astype(np.uint8))

    def test_binarize_passthrough_for_packed(self):
        packed = Tensor(np.zeros((1, 2, 2, 1), dtype=np.uint64), packed=True,
                        true_channels=3)
        assert Binarize().forward(packed) is packed

    def test_flatten_float(self, rng):
        x = rng.normal(size=(2, 3, 3, 4)).astype(np.float32)
        out = Flatten().forward(Tensor(x))
        assert out.shape == (2, 36)

    def test_flatten_packed_preserves_bit_order(self, rng):
        bits = rng.integers(0, 2, size=(1, 2, 2, 10), dtype=np.uint8)
        packed = bitpack.pack_bits(bits, axis=3)
        out = Flatten().forward(Tensor(packed, packed=True, true_channels=10))
        assert out.packed and out.true_channels == 40
        recovered = bitpack.unpack_bits(out.data, 40, axis=1)
        np.testing.assert_array_equal(recovered.reshape(1, 2, 2, 10), bits)

    def test_relu_and_softmax(self, rng):
        x = rng.normal(size=(2, 5)).astype(np.float32)
        assert Relu().forward(Tensor(x)).data.min() >= 0
        probs = Softmax().forward(Tensor(x)).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(2), rtol=1e-5)

    def test_relu_rejects_packed(self):
        with pytest.raises(ValueError):
            Relu().forward(Tensor(np.zeros((1, 2), dtype=np.uint64), packed=True,
                                  true_channels=8))
