"""Conformance suite for zero-downtime content-addressed model rollout.

Three layers, cheapest first:

* **Pure state machine** — :class:`RolloutController` under an injected
  clock: scripted lifecycles for every transition, a hypothesis property
  over *arbitrary* interleavings of prepare acks, worker deaths, canary
  comparisons and operator aborts (the machine must stay internally
  consistent and always terminate), and a router-level property that
  digest-filtered slot accounting conserves slots.
* **Golden timelines** — the exact event sequence of a scripted commit
  and a scripted auto-rollback, pinned under ``tests/golden/`` (regen
  with ``REPRO_REGEN_GOLDEN=1``).
* **Live cluster** — end-to-end publish → canary → promote → commit
  under real traffic (old version detached, attach bytes freed),
  divergent-artifact auto-rollback (stable digest never stops answering
  bit-identically), a worker crash mid-promote (no hang, no loss,
  consistent final digest), response-cache digest re-keying (a cached
  answer can never outlive its artifact), routing-independent cache hit
  rates, and attach revocation when the pin layout shrinks.
"""

import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.zoo import build_phonebit_network, micro_cnn_config
from repro.serving import ClusterService
from repro.serving.loadgen import (
    run_closed_loop,
    run_rollout_drill,
    synthetic_images,
)
from repro.serving.rollout import (
    ROLLOUT_PHASES,
    RolloutConfig,
    RolloutController,
)
from repro.serving.router import LeastOutstandingRouter

from pathlib import Path
import json

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))

#: Generous wall-clock bound for any single future in these tests.
WAIT_S = 60.0

OLD = "a" * 64
NEW = "b" * 64


def micro_network(rng=0, release=None):
    network = build_phonebit_network(micro_cnn_config(), rng=rng)
    if release is not None:
        network.metadata["release"] = release
    return network


def make_cluster(**kwargs):
    kwargs.setdefault("models", ("MicroCNN",))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("max_batch_size", 16)
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    kwargs.setdefault("heartbeat_timeout_s", 5.0)
    return ClusterService(**kwargs)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_controller(workers=("w0", "w1"), clock=None, **config):
    config.setdefault("canary_fraction", 0.5)
    config.setdefault("min_canary_samples", 2)
    return RolloutController(
        "MicroCNN", OLD, NEW, workers=workers,
        config=RolloutConfig(**config), clock=clock or FakeClock(),
    )


def wait_for(predicate, timeout_s=WAIT_S, interval_s=0.005):
    """Poll ``predicate`` until truthy; raises on timeout.

    The suite's replacement for wall-clock sleeps: waits exactly as long
    as the condition needs, fails loudly when it never comes.
    """
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError(f"condition not reached within {timeout_s}s")


# ---------------------------------------------------------------------------
# pure controller: scripted lifecycles
# ---------------------------------------------------------------------------

class TestRolloutController:
    def test_commit_lifecycle(self):
        clock = FakeClock()
        ctl = make_controller(clock=clock)
        assert ctl.phase == "staging"
        ctl.worker_prepared("w0")
        assert ctl.phase == "staging"  # one ack still pending
        ctl.worker_prepared("w1")
        assert ctl.phase == "canary"
        ctl.record_comparison(True, 0.01, 0.011)
        ctl.record_comparison(True, 0.01, 0.009)
        assert ctl.decide() == "promote"
        assert ctl.begin_promote() == ("w0", "w1")
        assert ctl.phase == "promoting"
        ctl.worker_committed("w0")
        assert ctl.phase == "promoting"
        ctl.worker_committed("w1")
        assert ctl.phase == "committed"
        assert ctl.done
        assert ctl.rollback_reason is None

    def test_same_digest_rejected(self):
        with pytest.raises(ValueError, match="already"):
            RolloutController("m", OLD, OLD, workers=("w0",),
                              clock=FakeClock())

    def test_mismatch_rolls_back(self):
        ctl = make_controller()
        ctl.worker_prepared("w0")
        ctl.worker_prepared("w1")
        ctl.record_comparison(False, 0.01, 0.01)
        assert ctl.decide() == "rollback"
        assert ctl.phase == "rolled_back"
        assert "mismatch" in ctl.rollback_reason

    def test_latency_regression_rolls_back(self):
        ctl = make_controller(latency_factor=2.0)
        ctl.worker_prepared("w0")
        ctl.worker_prepared("w1")
        ctl.record_comparison(True, 0.010, 0.100)
        ctl.record_comparison(True, 0.010, 0.100)
        assert ctl.decide() == "rollback"
        assert "latency" in ctl.rollback_reason

    def test_phase_timeouts_always_terminate(self):
        for phase, setup in (
            ("staging", lambda c: None),
            ("canary", lambda c: (c.worker_prepared("w0"),
                                  c.worker_prepared("w1"))),
        ):
            clock = FakeClock()
            ctl = make_controller(clock=clock, staging_timeout_s=5.0,
                                  canary_timeout_s=5.0)
            setup(ctl)
            assert ctl.phase == phase
            clock.advance(5.1)
            assert ctl.decide() == "rollback"
            assert ctl.phase == "rolled_back"
            assert "timed out" in ctl.rollback_reason

    def test_promote_timeout_rolls_back(self):
        clock = FakeClock()
        ctl = make_controller(clock=clock, promote_timeout_s=5.0)
        ctl.worker_prepared("w0")
        ctl.worker_prepared("w1")
        ctl.record_comparison(True, 0.01, 0.01)
        ctl.record_comparison(True, 0.01, 0.01)
        ctl.begin_promote()
        ctl.worker_committed("w0")  # w1 never acks
        clock.advance(5.1)
        assert ctl.decide() == "rollback"
        # The flipped worker is reported so the shell can flip it back.
        assert ctl.status()["committed"] == ["w0"]

    def test_last_staged_holder_dying_rolls_back(self):
        ctl = make_controller()
        ctl.worker_prepared("w0")
        ctl.worker_gone("w1")
        assert ctl.phase == "canary"  # w0 alone carries the canary
        ctl.worker_gone("w0")
        assert ctl.phase == "rolled_back"
        assert "died" in ctl.rollback_reason

    def test_dead_worker_never_gates_staging(self):
        ctl = make_controller()
        ctl.worker_prepared("w0")
        ctl.worker_gone("w1")  # would otherwise block canary entry forever
        assert ctl.phase == "canary"

    def test_joined_worker_must_stage_before_commit_set(self):
        ctl = make_controller()
        ctl.worker_prepared("w0")
        ctl.worker_prepared("w1")
        ctl.worker_joined("w2")
        ctl.record_comparison(True, 0.01, 0.01)
        ctl.record_comparison(True, 0.01, 0.01)
        # w2 never acked prepare: it is not in the commit set (the shell
        # flips stragglers when their prepare ack lands after promote).
        assert ctl.begin_promote() == ("w0", "w1")

    def test_begin_promote_requires_canary(self):
        ctl = make_controller()
        with pytest.raises(ValueError, match="cannot promote"):
            ctl.begin_promote()

    def test_force_rollback_idempotent_and_terminal(self):
        ctl = make_controller()
        ctl.force_rollback("drill")
        assert ctl.phase == "rolled_back"
        ctl.force_rollback("second")  # no-op: terminal phases absorb
        assert ctl.rollback_reason == "drill"
        ctl.worker_prepared("w0")  # feeds after terminal are ignored
        assert ctl.status()["prepared"] == []

    def test_should_probe_spreads_exact_fraction(self):
        ctl = make_controller(canary_fraction=0.25)
        ctl.worker_prepared("w0")
        ctl.worker_prepared("w1")
        probes = sum(ctl.should_probe() for _ in range(200))
        assert probes == 50  # integer-threshold sampling is exact

    def test_should_probe_false_outside_canary(self):
        ctl = make_controller()
        assert not ctl.should_probe()  # staging
        ctl.worker_prepared("w0")
        ctl.worker_prepared("w1")
        ctl.force_rollback("drill")
        assert not ctl.should_probe()  # terminal


# ---------------------------------------------------------------------------
# pure controller: property over arbitrary interleavings
# ---------------------------------------------------------------------------

WORKER_IDS = ("w0", "w1", "w2")

_OPS = st.one_of(
    st.tuples(st.just("prepared"), st.sampled_from(WORKER_IDS)),
    st.tuples(st.just("joined"), st.sampled_from(WORKER_IDS)),
    st.tuples(st.just("gone"), st.sampled_from(WORKER_IDS)),
    st.tuples(st.just("committed"), st.sampled_from(WORKER_IDS)),
    st.tuples(st.just("compare"), st.booleans()),
    st.tuples(st.just("probe"), st.none()),
    st.tuples(st.just("tick"), st.floats(0.0, 40.0, allow_nan=False)),
    st.tuples(st.just("begin_promote"), st.none()),
    st.tuples(st.just("operator_rollback"), st.none()),
)


class TestRolloutStateMachineProperty:
    @settings(deadline=None, max_examples=200)
    @given(ops=st.lists(_OPS, max_size=40))
    def test_any_interleaving_stays_consistent_and_terminates(self, ops):
        """Every interleaving of rollout inputs keeps the machine sound.

        Soundness here means: phases are always legal, terminal phases
        absorb, the worker sets partition (no worker simultaneously
        pending and prepared, or pending-commit and committed), a
        committed rollout never carried more mismatches than its budget,
        the event clock is monotone — and after the dust settles the
        machine can always be driven to a terminal phase (no interleaving
        wedges it).
        """
        clock = FakeClock()
        ctl = make_controller(workers=WORKER_IDS, clock=clock,
                              canary_fraction=0.5, min_canary_samples=2,
                              staging_timeout_s=60.0, canary_timeout_s=60.0,
                              promote_timeout_s=60.0)
        terminal_phase = None
        for op, arg in ops:
            if op == "prepared":
                ctl.worker_prepared(arg)
            elif op == "joined":
                ctl.worker_joined(arg)
            elif op == "gone":
                ctl.worker_gone(arg)
            elif op == "committed":
                ctl.worker_committed(arg)
            elif op == "compare":
                ctl.record_comparison(arg, 0.01, 0.01)
            elif op == "probe":
                ctl.should_probe()
            elif op == "tick":
                clock.advance(arg)
                ctl.decide()
            elif op == "begin_promote":
                if ctl.phase == "canary":
                    ctl.begin_promote()
            elif op == "operator_rollback":
                ctl.force_rollback("property abort")

            status = ctl.status()
            assert status["phase"] in ROLLOUT_PHASES
            # Terminal phases absorb: nothing moves a finished rollout.
            if terminal_phase is not None:
                assert status["phase"] == terminal_phase
            elif ctl.done:
                terminal_phase = status["phase"]
            # The per-worker sets partition.
            assert not set(status["pending_prepare"]) & set(status["prepared"])
            assert not set(status["pending_commit"]) & set(status["committed"])
            if status["phase"] == "rolled_back":
                assert status["rollback_reason"]
            if status["phase"] == "committed":
                assert status["committed"]  # someone actually flipped
                assert status["canary"]["mismatches"] == 0
            # The event clock never runs backwards.
            times = [e["t_s"] for e in ctl.timeline()]
            assert times == sorted(times)

        # Liveness: whatever happened above, phase timeouts guarantee the
        # machine terminates once the shell keeps ticking.
        for _ in range(4):
            clock.advance(61.0)
            ctl.decide()
            if ctl.phase == "canary":
                ctl.record_comparison(True, 0.01, 0.01)
        if ctl.phase == "promoting":
            for worker in list(ctl.status()["pending_commit"]):
                ctl.worker_gone(worker)
        assert ctl.done


class TestRouterDigestSlotConservation:
    @settings(deadline=None, max_examples=150)
    @given(ops=st.lists(st.one_of(
        st.tuples(st.just("declare"), st.sampled_from(("a", "b")),
                  st.sampled_from((OLD, NEW))),
        st.tuples(st.just("revoke"), st.sampled_from(("a", "b")),
                  st.sampled_from((OLD, NEW))),
        st.tuples(st.just("acquire"), st.none(),
                  st.sampled_from((None, OLD, NEW))),
        st.tuples(st.just("release"), st.none(), st.none()),
    ), max_size=60))
    def test_digest_filtered_acquire_conserves_slots(self, ops):
        """Slot accounting holds under any declare/revoke/acquire mix,
        and a digest-filtered acquire only ever lands on a declared
        holder of that digest."""
        router = LeastOutstandingRouter(max_outstanding=3)
        router.add_worker("a")
        router.add_worker("b")
        held = []  # acquired slots we still owe a release for
        shadow = {"a": 0, "b": 0}
        for op, worker, digest in ops:
            if op == "declare":
                router.declare_digest(worker, "m", digest)
            elif op == "revoke":
                router.revoke_digest(worker, "m", digest)
            elif op == "acquire":
                got = router.acquire("m", record_shed=False, digest=digest)
                if got is not None:
                    if digest is not None:
                        assert got in router.digest_holders("m", digest)
                    held.append(got)
                    shadow[got] += 1
            elif op == "release" and held:
                victim = held.pop()
                assert router.release(victim)
                shadow[victim] -= 1
            for name in ("a", "b"):
                assert router.outstanding(name) == shadow[name]
                assert shadow[name] <= 3
        # Every slot still held is releasable exactly once.
        for victim in held:
            assert router.release(victim)
        assert router.outstanding("a") == 0
        assert router.outstanding("b") == 0


# ---------------------------------------------------------------------------
# golden timelines
# ---------------------------------------------------------------------------

class TestGoldenRolloutTimelines:
    def _scripted_commit(self):
        clock = FakeClock()
        ctl = make_controller(clock=clock, canary_fraction=0.5,
                              min_canary_samples=3)
        clock.advance(0.25)
        ctl.worker_prepared("w0")
        clock.advance(0.25)
        ctl.worker_prepared("w1")
        for _ in range(3):
            clock.advance(0.5)
            ctl.record_comparison(True, 0.010, 0.012)
        clock.advance(0.25)
        assert ctl.decide() == "promote"
        ctl.begin_promote()
        clock.advance(0.25)
        ctl.worker_committed("w0")
        clock.advance(0.25)
        ctl.worker_committed("w1")
        return ctl.timeline()

    def _scripted_rollback(self):
        clock = FakeClock()
        ctl = make_controller(clock=clock, canary_fraction=0.5,
                              min_canary_samples=3)
        clock.advance(0.25)
        ctl.worker_prepared("w0")
        clock.advance(0.25)
        ctl.worker_prepared("w1")
        clock.advance(0.5)
        ctl.record_comparison(True, 0.010, 0.012)
        clock.advance(0.5)
        ctl.record_comparison(False, 0.010, 0.012)
        assert ctl.decide() == "rollback"
        return ctl.timeline()

    def test_scripted_timelines_match_golden(self):
        current = {
            "commit": self._scripted_commit(),
            "rollback": self._scripted_rollback(),
        }
        path = GOLDEN_DIR / "rollout_timelines.json"
        if REGEN:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(
                json.dumps(current, indent=2, sort_keys=True) + "\n")
        if not path.exists():
            pytest.fail(f"golden file {path} is missing; generate it with "
                        "REPRO_REGEN_GOLDEN=1")
        golden = json.loads(path.read_text())
        assert golden == current

    def test_golden_phases_traverse_lifecycle_in_order(self):
        golden = json.loads(
            (GOLDEN_DIR / "rollout_timelines.json").read_text())
        order = {phase: i for i, phase in enumerate(ROLLOUT_PHASES)}
        for name, events in golden.items():
            ranks = [order[e["phase"]] for e in events]
            assert ranks == sorted(ranks), name
            assert events[0]["kind"] == "start", name
        assert golden["commit"][-1]["kind"] == "complete"
        assert golden["rollback"][-1]["kind"] == "rollback"


# ---------------------------------------------------------------------------
# live cluster: end-to-end rollout
# ---------------------------------------------------------------------------

def _terminal_status(cluster, model="MicroCNN"):
    status = cluster.rollout_status(model)
    if status and status[0]["phase"] in ("committed", "rolled_back"):
        return status[0]
    return None


class TestLiveRollout:
    def _drive_traffic(self, cluster, images, count, start=0):
        futures = [cluster.submit("MicroCNN", images[(start + i) % len(images)])
                   for i in range(count)]
        return [f.result(timeout=WAIT_S) for f in futures]

    def test_publish_canary_promote_commit_end_to_end(self):
        config = RolloutConfig(canary_fraction=1.0, min_canary_samples=3)
        with make_cluster(cache_capacity=0) as cluster:
            images = synthetic_images((8, 8, 3), 64, seed=21)
            before = self._drive_traffic(cluster, images, 64)
            old_digest = cluster.store.handles()["MicroCNN"].digest
            new_digest = cluster.publish(
                micro_network(release="v2"), rollout=config)
            assert new_digest != old_digest
            # Traffic drives the canary to quota and the commit through.
            for start in range(0, 512, 32):
                self._drive_traffic(cluster, images, 32, start=start)
                if _terminal_status(cluster):
                    break
            status = wait_for(lambda: _terminal_status(cluster))
            assert status["phase"] == "committed"
            assert status["canary"]["samples"] >= 3
            assert status["canary"]["mismatches"] == 0
            # The store's active handle flipped to the new digest.
            assert cluster.store.handles()["MicroCNN"].digest == new_digest
            # Deferred revocation: the old version is detached everywhere
            # and its shm bytes actually freed (worker acks carry counts).
            wait_for(lambda: [
                entry for entry in cluster._detach_log
                if ("MicroCNN", old_digest) in entry[1] and entry[2] > 0
            ])
            wait_for(
                lambda: old_digest not in cluster.store.version_handles(
                    "MicroCNN"))
            # Post-commit answers are bit-identical to pre-rollout ones:
            # the artifact changed bytes, not behaviour.
            after = self._drive_traffic(cluster, images, 64)
            assert np.array_equal(np.stack(before), np.stack(after))
            timeline = [e["kind"] for e in
                        cluster.rollout_timeline("MicroCNN")]
            assert timeline[0] == "start"
            assert timeline[-1] == "complete"

    def test_divergent_artifact_auto_rolls_back(self):
        config = RolloutConfig(canary_fraction=1.0, min_canary_samples=3)
        with make_cluster(cache_capacity=0) as cluster:
            images = synthetic_images((8, 8, 3), 64, seed=22)
            before = self._drive_traffic(cluster, images, 64)
            old_digest = cluster.store.handles()["MicroCNN"].digest
            new_digest = cluster.publish(
                micro_network(rng=7, release="divergent"), rollout=config)
            for start in range(0, 512, 32):
                self._drive_traffic(cluster, images, 32, start=start)
                if _terminal_status(cluster):
                    break
            status = wait_for(lambda: _terminal_status(cluster))
            assert status["phase"] == "rolled_back"
            assert "mismatch" in status["rollback_reason"]
            # The stable digest never stopped serving, and still does.
            assert cluster.store.handles()["MicroCNN"].digest == old_digest
            after = self._drive_traffic(cluster, images, 64)
            assert np.array_equal(np.stack(before), np.stack(after))
            # The rejected artifact is fully retired: detached on every
            # worker and unpublished from the store.
            wait_for(
                lambda: new_digest not in cluster.store.version_handles(
                    "MicroCNN"))
            assert cluster.rollout_status("MicroCNN")[0]["phase"] == \
                "rolled_back"

    @pytest.mark.timeout_s(120)
    def test_worker_crash_mid_promote_no_loss_no_hang(self):
        """Kill a worker in the promoting window: every admitted request
        still resolves, the rollout reaches a terminal phase, and the
        fleet serves exactly one digest's answers afterwards."""
        config = RolloutConfig(canary_fraction=1.0, min_canary_samples=2,
                               auto_promote=False)
        with make_cluster(workers=3, heartbeat_timeout_s=2.0,
                          cache_capacity=0) as cluster:
            images = synthetic_images((8, 8, 3), 64, seed=23)
            baseline = [f.result(timeout=WAIT_S) for f in
                        cluster.submit_batch("MicroCNN", images)]
            cluster.publish(micro_network(release="crash-drill"),
                            rollout=config)
            futures = []

            def sampled_enough():
                futures.extend(
                    cluster.submit("MicroCNN", images[i]) for i in range(8))
                status = cluster.rollout_status("MicroCNN")[0]
                return (status["phase"] == "canary"
                        and status["canary"]["samples"] >= 2)

            wait_for(sampled_enough)
            cluster.promote("MicroCNN")
            victim = next(iter(cluster._workers.values()))
            os.kill(victim.pid, signal.SIGKILL)
            futures.extend(
                cluster.submit("MicroCNN", images[i]) for i in range(32))
            # No hang, no loss: every admitted future resolves with a row
            # (crash requeue re-runs the victim's in-flight work).
            rows = [f.result(timeout=WAIT_S) for f in futures]
            assert all(row.shape == (10,) for row in rows)
            status = wait_for(lambda: _terminal_status(cluster))
            # Whichever way the race resolved, the fleet's answers must
            # be one digest's answers — and both digests answer
            # identically here, so the stream stays bit-stable.
            final = [f.result(timeout=WAIT_S) for f in
                     cluster.submit_batch("MicroCNN", images)]
            assert np.array_equal(np.stack(baseline), np.stack(final))
            if status["phase"] == "committed":
                assert status["committed"]

    def test_publish_same_bytes_rejected(self):
        with make_cluster(workers=1) as cluster:
            wait_for(lambda: cluster.rollout_status() == [])
            with pytest.raises(ValueError, match="already"):
                cluster.publish(micro_network())

    def test_second_rollout_while_live_rejected(self):
        config = RolloutConfig(min_canary_samples=10**6)
        with make_cluster(workers=1) as cluster:
            cluster.publish(micro_network(release="v2"), rollout=config)
            with pytest.raises(RuntimeError, match="already"):
                cluster.publish(micro_network(release="v3"), rollout=config)
            cluster.rollback("MicroCNN", reason="test cleanup")

    def test_operator_rollback_drill(self):
        result = run_rollout_drill(
            workers=2, requests=96, offered_rps=400.0, seed=5,
            operator_rollback=True, cache_capacity=0,
            rollout=RolloutConfig(canary_fraction=0.25,
                                  min_canary_samples=10**6))
        assert result.phase == "rolled_back"
        assert result.rollback_reason == "drill operator rollback"
        assert result.shed == 0
        assert result.failed == 0
        assert result.bit_identical

    def test_zero_shed_zero_loss_drill_commits(self):
        result = run_rollout_drill(
            workers=2, requests=96, offered_rps=400.0, seed=6,
            cache_capacity=0,
            rollout=RolloutConfig(canary_fraction=0.5,
                                  min_canary_samples=3))
        assert result.phase == "committed"
        assert result.shed == 0
        assert result.failed == 0
        assert result.completed == result.offered
        assert result.bit_identical
        kinds = [e["kind"] for e in result.timeline]
        assert kinds[0] == "start" and kinds[-1] == "complete"


# ---------------------------------------------------------------------------
# cluster-wide response cache
# ---------------------------------------------------------------------------

class TestClusterResponseCache:
    def _repeat_stream(self, workers, images, repeats=3):
        with make_cluster(workers=workers, cache_capacity=256) as cluster:
            for _ in range(repeats):
                for future in cluster.submit_batch("MicroCNN", images):
                    future.result(timeout=WAIT_S)
            stats = cluster.cache_stats()
            return stats.hits, stats.misses

    def test_hit_rate_independent_of_worker_count(self):
        """The cache fronts the router, so a repeated request stream
        scores the same hits on 1, 2 or 4 workers — hit rates must not
        be routing-shaped."""
        images = synthetic_images((8, 8, 3), 16, seed=31)
        results = {w: self._repeat_stream(w, images) for w in (1, 2, 4)}
        assert len(set(results.values())) == 1, results
        hits, misses = results[1]
        assert misses == 16  # first pass misses once per distinct image
        assert hits == 32    # every later pass hits every image

    def test_workers_run_cacheless(self):
        """Worker-side caches must stay off: a hit that resolves on one
        worker's private cache would make hit rates routing-shaped
        again (and could outlive a digest flip unkeyed)."""
        with make_cluster(workers=2, cache_capacity=64) as cluster:
            images = synthetic_images((8, 8, 3), 8, seed=32)
            for _ in range(3):
                for future in cluster.submit_batch("MicroCNN", images):
                    future.result(timeout=WAIT_S)
            detail = cluster.cluster_report()
            for report in detail.worker_reports.values():
                for model_report in report.values():
                    assert model_report.cache_hits == 0

    def test_committed_rollout_cannot_serve_stale_cached_response(self):
        """Poisoned-cache regression: answers cached under the old
        digest must be unreachable once a different artifact commits —
        the cache key carries the serving digest."""
        config = RolloutConfig(canary_fraction=1.0, min_canary_samples=1,
                               max_mismatches=10**6)
        with make_cluster(workers=2, cache_capacity=256) as cluster:
            probe = synthetic_images((8, 8, 3), 1, seed=33)[0]
            fill = synthetic_images((8, 8, 3), 64, seed=34)
            old_answer = cluster.infer("MicroCNN", probe, timeout=WAIT_S)
            cluster.infer("MicroCNN", probe, timeout=WAIT_S)
            assert cluster.cache_stats().hits >= 1  # cached under old digest
            # Commit a *divergent* artifact (mismatch budget disarmed):
            # the worst case for a stale cache, because the old cached
            # answer is now wrong.
            divergent = micro_network(rng=7, release="poison")
            cluster.publish(divergent, model="MicroCNN", rollout=config)
            for start in range(0, 256, 32):
                for future in cluster.submit_batch(
                        "MicroCNN", fill[start % 64:start % 64 + 16]):
                    future.result(timeout=WAIT_S)
                if _terminal_status(cluster):
                    break
            status = wait_for(lambda: _terminal_status(cluster))
            assert status["phase"] == "committed"
            misses_before = cluster.cache_stats().misses
            post = cluster.infer("MicroCNN", probe, timeout=WAIT_S)
            # The probe re-missed (its old entry is keyed to a digest
            # that no longer serves) and the answer is the *new*
            # artifact's, computed fresh.
            assert cluster.cache_stats().misses == misses_before + 1
            # baseline_service() attaches the *current* handles — the
            # committed divergent artifact — so this is the new truth.
            baseline = cluster.baseline_service()
            try:
                expected = run_closed_loop(
                    baseline, "MicroCNN", probe[None]).outputs[0]
            finally:
                baseline.close()
            assert np.array_equal(post, expected)
            assert not np.array_equal(post, old_answer) or \
                np.array_equal(old_answer, expected)


# ---------------------------------------------------------------------------
# attach revocation on pin shrink
# ---------------------------------------------------------------------------

class TestAttachRevocation:
    def test_pin_shrink_detaches_and_frees_worker_memory(self):
        """Narrowing a model's pin width must detach the surplus manifest
        and free its shm views on the no-longer-pinned worker — attach
        bytes drop in the accounting *and* in the worker's ack."""
        with make_cluster(models=("MicroCNN", "TinyCNN"), workers=2,
                          pin_models={"MicroCNN": 2, "TinyCNN": 2},
                          cache_capacity=0) as cluster:
            images = synthetic_images((8, 8, 3), 8, seed=41)
            tiny_images = synthetic_images((32, 32, 3), 8, seed=42)
            for model, batch in (("MicroCNN", images),
                                 ("TinyCNN", tiny_images)):
                for future in cluster.submit_batch(model, batch):
                    future.result(timeout=WAIT_S)
            before = cluster.worker_detail()
            assert all(d["models"] == ["MicroCNN", "TinyCNN"]
                       for d in before.values())
            # Shrink TinyCNN's pin width to 1 (the rebalance path with a
            # pinned-by-hand layout) and converge the fleet onto it.
            with cluster._lock:
                cluster._pinning["TinyCNN"] = 1
                applied = dict(cluster._pinning)
            cluster.router.set_pin_counts(applied)
            cluster._refresh_pinning()
            after = cluster.worker_detail()
            shrunk = [wid for wid, d in after.items()
                      if d["models"] == ["MicroCNN"]]
            assert len(shrunk) == 1  # exactly one worker dropped it
            victim = shrunk[0]
            assert after[victim]["attach_bytes"] < \
                before[victim]["attach_bytes"]
            # The worker's detach ack proves the shm views were closed
            # and reports the bytes it freed.
            freed = wait_for(lambda: [
                entry for entry in cluster._detach_log
                if entry[0] == victim
                and any(item[0] == "TinyCNN" for item in entry[1])
            ])
            assert freed[0][2] > 0
            # The surviving holder still serves TinyCNN bit-identically.
            rerun = [f.result(timeout=WAIT_S) for f in
                     cluster.submit_batch("TinyCNN", tiny_images)]
            baseline = cluster.baseline_service()
            try:
                expected = run_closed_loop(baseline, "TinyCNN",
                                           tiny_images).outputs
            finally:
                baseline.close()
            assert np.array_equal(np.stack(rerun), expected)
