"""Tests for the kernel workload builders."""

import pytest

from repro.core import kernels as kern
from repro.core.kernels import ConvGeometry
from repro.gpusim.kernel import ExecutionUnit, OpKind


@pytest.fixture
def geometry():
    return ConvGeometry(in_height=26, in_width=26, in_channels=128,
                        out_channels=256, kernel_size=3, stride=1, padding=1)


class TestConvGeometry:
    def test_output_shape(self, geometry):
        assert geometry.output_shape() == (26, 26, 256)

    def test_macs(self):
        g = ConvGeometry(4, 4, 2, 3, kernel_size=3, padding=1)
        assert g.macs == 4 * 4 * 3 * 9 * 2

    def test_weight_count(self, geometry):
        assert geometry.weight_count == 3 * 3 * 128 * 256


class TestPhoneBitConvWorkload:
    def test_fused_single_kernel(self, geometry):
        workload = kern.phonebit_binary_conv_workload("conv", geometry)
        assert len(workload.kernels) == 1
        kernel = workload.kernels[0]
        assert kernel.op_kind is OpKind.BITWISE
        assert kernel.fused_layers == 3
        assert not kernel.divergent
        # one thread computes 8 filters
        assert kernel.work_items == geometry.output_pixels * geometry.out_channels // 8

    def test_unfused_adds_bn_and_binarize_kernels(self, geometry):
        workload = kern.phonebit_binary_conv_workload("conv", geometry, fused=False)
        names = [k.name for k in workload.kernels]
        assert any("batchnorm" in n for n in names)
        assert any("binarize" in n for n in names)

    def test_branchy_kernel_marked_divergent(self, geometry):
        workload = kern.phonebit_binary_conv_workload("conv", geometry, branchless=False)
        assert workload.kernels[0].divergent

    def test_packing_word_width_scales_ops(self, geometry):
        wide = kern.phonebit_binary_conv_workload("conv", geometry, word_size=64)
        narrow = kern.phonebit_binary_conv_workload("conv", geometry, word_size=8)
        assert narrow.total_ops > wide.total_ops
        assert narrow.total_ops == pytest.approx(8 * wide.kernels[0].total_ops, rel=0.2)

    def test_workload_rule_separate_packing_above_limit(self):
        big = ConvGeometry(13, 13, 1024, 1024, kernel_size=3, padding=1)
        workload = kern.phonebit_binary_conv_workload("conv8", big)
        assert any("pack" in k.name for k in workload.kernels[1:])
        assert not workload.kernels[0].uses_private_packing

    def test_workload_rule_integrated_below_limit(self, geometry):
        workload = kern.phonebit_binary_conv_workload("conv", geometry)
        assert workload.kernels[0].uses_private_packing
        assert len(workload.kernels) == 1

    def test_input_layer_adds_bitplane_split_and_scales_ops(self):
        g = ConvGeometry(416, 416, 3, 16, kernel_size=3, padding=1)
        bitplane = kern.phonebit_binary_conv_workload("conv1", g, input_bitplanes=8)
        assert any("bitplane-split" in k.name for k in bitplane.kernels)
        assert bitplane.layer_type == "input_conv"
        conv_kernel = next(k for k in bitplane.kernels if "bconv" in k.name)
        # The fused conv kernel processes all 8 bit-planes of the packed
        # 3×3×3 window for each of its 8 filters.
        window_words = kern.words_per_channel(3 * 3 * 3, 64)
        assert conv_kernel.ops_per_item >= 8 * window_words * kern.OPS_PER_WORD * 8

    def test_non_binary_output_writes_float(self, geometry):
        workload = kern.phonebit_binary_conv_workload("conv", geometry,
                                                      output_binary=False)
        assert workload.kernels[0].bytes_written_per_item == 4.0


class TestOtherPhoneBitWorkloads:
    def test_float_conv_is_fp32(self, geometry):
        workload = kern.phonebit_float_conv_workload("conv9", geometry)
        assert workload.kernels[0].op_kind is OpKind.FP32
        assert workload.total_ops == pytest.approx(2 * geometry.macs)

    def test_pool_packed_vs_float_items(self):
        packed = kern.phonebit_pool_workload("pool", 104, 104, 32, 2, 2, packed=True)
        floaty = kern.phonebit_pool_workload("pool", 104, 104, 32, 2, 2, packed=False)
        assert packed.kernels[0].work_items < floaty.kernels[0].work_items

    def test_binary_dense_workload(self):
        workload = kern.phonebit_binary_dense_workload("fc", 9216, 4096)
        assert workload.kernels[0].op_kind is OpKind.BITWISE
        assert workload.weight_bytes == pytest.approx(9216 * 4096 / 8)

    def test_float_dense_workload(self):
        workload = kern.phonebit_float_dense_workload("fc8", 4096, 10)
        assert workload.kernels[0].work_items == 10
        assert workload.weight_bytes == pytest.approx(4 * 4096 * 10)


class TestBaselineWorkloads:
    def test_precision_changes_bytes(self, geometry):
        fp32 = kern.float_conv_workload("c", geometry, op_kind=OpKind.FP32)
        int8 = kern.float_conv_workload("c", geometry, op_kind=OpKind.INT8)
        assert fp32.weight_bytes == 4 * int8.weight_bytes

    def test_unfused_batchnorm_and_activation_add_kernels(self, geometry):
        plain = kern.float_conv_workload("c", geometry)
        unfused = kern.float_conv_workload("c", geometry, fused_batchnorm=False,
                                           separate_activation=True)
        assert len(unfused.kernels) == len(plain.kernels) + 2

    def test_cpu_unit_and_threads_propagate(self, geometry):
        workload = kern.float_conv_workload("c", geometry, unit=ExecutionUnit.CPU,
                                            threads=4)
        assert workload.kernels[0].unit is ExecutionUnit.CPU
        assert workload.kernels[0].threads == 4

    def test_input_reuse_reduces_traffic(self, geometry):
        low = kern.float_conv_workload("c", geometry, input_reuse=1.0)
        high = kern.float_conv_workload("c", geometry, input_reuse=64.0)
        assert high.kernels[0].bytes_read_per_item < low.kernels[0].bytes_read_per_item

    def test_pool_and_dense_builders(self):
        pool = kern.float_pool_workload("p", 26, 26, 256, 2, 2)
        dense = kern.float_dense_workload("d", 9216, 4096)
        assert pool.kernels[0].work_items == 13 * 13 * 256
        assert dense.kernels[0].ops_per_item == 2 * 9216
