"""Tests for the compiled execution plan: fusion, arena, threading, caching.

The load-bearing property is *bit-exactness*: for every zoo entry, thread
count and popcount dispatch path, ``ExecutionPlan.execute`` must reproduce
``Network.forward`` exactly — the fused integer thresholds are extracted
from each layer's own reference computation, so any drift is a bug.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import bitpack
from repro.core import plan as plan_mod
from repro.core.engine import PhoneBitEngine
from repro.core.fusion import BatchNormParams, exact_integer_threshold
from repro.core.layers import (
    BatchNorm2d,
    Binarize,
    BinaryConv2d,
    BinaryDense,
    Flatten,
    InputConv2d,
    MaxPool2d,
)
from repro.core.network import Network
from repro.models.zoo import SERVING_MODELS, build_phonebit_network, get_serving_config

#: Reduced input resolutions so the paper-scale networks stay test-sized;
#: models absent here run at their native resolution.
_TEST_SIZES = {"VGG16": 32, "AlexNet": 67, "YOLOv2 Tiny": 32}

_NETWORK_CACHE = {}


def zoo_network(name):
    """Build (once) a reduced-size network for a serving-zoo entry."""
    if name not in _NETWORK_CACHE:
        config = get_serving_config(name)
        size = _TEST_SIZES.get(config.name)
        if size is not None:
            config = dataclasses.replace(config, input_shape=(size, size, 3))
        _NETWORK_CACHE[name] = build_phonebit_network(config, rng=7)
    return _NETWORK_CACHE[name]


@pytest.fixture(params=["dispatch-default", "dispatch-swar"])
def popcount_dispatch(request, monkeypatch):
    """Exercise both popcount paths (NumPy >= 2 bitwise_count and SWAR)."""
    if request.param == "dispatch-swar":
        monkeypatch.setattr(bitpack, "popcount_words", bitpack.popcount_swar)
    return request.param


class TestExactIntegerThreshold:
    def test_matches_branchless_reference_exhaustively(self, random_batchnorm):
        from repro.core.branchless import branchless_binarize
        from repro.core.fusion import compute_threshold

        bn = random_batchnorm(16, seed=3)
        xi = compute_threshold(bn)
        predicate = lambda x1: branchless_binarize(x1, xi, bn.gamma)
        lo, hi = -40, 40
        threshold, flip = exact_integer_threshold(predicate, 16, lo, hi)
        for x in range(lo, hi + 1):
            candidates = np.full(16, x, dtype=np.int64)
            expected = predicate(candidates).astype(bool)
            got = (candidates >= threshold) ^ flip
            np.testing.assert_array_equal(got, expected, err_msg=f"x1={x}")

    def test_constant_channels(self):
        # Thresholds far outside the range make the bit constant per channel.
        predicate = lambda x1: np.array([1, 0], dtype=np.uint8)
        threshold, flip = exact_integer_threshold(predicate, 2, -5, 5)
        for x in (-5, 0, 5):
            candidates = np.full(2, x, dtype=np.int64)
            got = (candidates >= threshold) ^ flip
            np.testing.assert_array_equal(got, [True, False])

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            exact_integer_threshold(lambda x: x >= 0, 1, 3, 3)


class TestPlanBitExactOnZoo:
    @pytest.mark.parametrize("model", sorted(SERVING_MODELS))
    @pytest.mark.parametrize("threads", [1, 4])
    def test_plan_matches_forward(self, model, threads, popcount_dispatch, rng):
        network = zoo_network(model)
        images = rng.integers(
            0, 256, size=(3,) + network.input_shape
        ).astype(np.uint8)
        expected = network.forward(images)
        plan = plan_mod.get_plan(network)
        assert plan.fused_step_count > 0  # every zoo net has binary blocks
        out = plan.execute(images, threads=threads)
        assert out.data.dtype == expected.data.dtype
        np.testing.assert_array_equal(out.data, expected.data)

    def test_input_range_validation_matches_interpreter(self, rng):
        network = zoo_network("MicroCNN")
        plan = plan_mod.get_plan(network)
        shape = (1,) + network.input_shape
        too_wide = rng.integers(0, 256, size=shape).astype(np.int16)
        too_wide[0, 0, 0, 0] = 300  # does not fit input_bits=8
        negative = rng.integers(0, 256, size=shape).astype(np.int16)
        negative[0, 0, 0, 0] = -1
        for bad in (too_wide, negative):
            with pytest.raises(ValueError):
                network.forward(bad)
            with pytest.raises(ValueError):
                plan.execute(bad)

    def test_repeated_execution_reuses_arena(self, rng):
        network = zoo_network("MicroCNN")
        plan = plan_mod.get_plan(network)
        images = rng.integers(0, 256, size=(2,) + network.input_shape).astype(np.uint8)
        first = plan.execute(images, threads=1)
        assert len(plan._arenas) == 1  # returned to the free-list
        arena = plan._arenas[0]
        bytes_before = arena.nbytes
        second = plan.execute(images, threads=1)
        assert plan._arenas[0] is arena and arena.nbytes == bytes_before
        np.testing.assert_array_equal(first.data, second.data)

    def test_outputs_are_detached_from_arena(self, rng):
        network = zoo_network("MicroCNN")
        plan = plan_mod.get_plan(network)
        images = rng.integers(0, 256, size=(2,) + network.input_shape).astype(np.uint8)
        other = rng.integers(0, 256, size=(2,) + network.input_shape).astype(np.uint8)
        first = plan.execute(images, threads=1)
        snapshot = first.data.copy()
        plan.execute(other, threads=1)  # would clobber an arena-backed view
        np.testing.assert_array_equal(first.data, snapshot)

    def test_concurrent_executions_stay_isolated(self, rng):
        # Regression: the arena must not return to the free-list before the
        # result is detached, or a concurrent execution borrows it and
        # overwrites the output mid-read.
        import threading

        network = zoo_network("MicroCNN")
        plan = plan_mod.get_plan(network)
        batches = [
            rng.integers(0, 256, size=(3,) + network.input_shape).astype(np.uint8)
            for _ in range(2)
        ]
        expected = [network.forward(batch).data for batch in batches]
        mismatches = []

        def worker(index):
            for _ in range(20):
                out = plan.execute(batches[index], threads=1)
                if not np.array_equal(out.data, expected[index]):
                    mismatches.append(index)
                    return

        threads = [threading.Thread(target=worker, args=(i,)) for i in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive()
        assert not mismatches


class TestUnfusedBlockFolding:
    def _bn(self, channels, seed):
        local = np.random.default_rng(seed)
        gamma = local.uniform(0.3, 1.5, channels) * local.choice([-1.0, 1.0], channels)
        return BatchNormParams(
            gamma=gamma,
            beta=local.normal(0.0, 0.7, channels),
            mean=local.normal(0.0, 3.0, channels),
            var=local.uniform(0.2, 4.0, channels),
        )

    def test_conv_bn_binarize_folds_to_one_step(self, rng):
        net = Network("unfused", input_shape=(12, 12, 3), input_dtype="uint8")
        net.add(InputConv2d(3, 8, 3, padding=1, rng=1, batchnorm=self._bn(8, 1),
                            name="conv1"))
        net.add(BinaryConv2d(8, 16, 3, padding=1, rng=2, output_binary=False,
                             name="conv2"))
        net.add(BatchNorm2d(self._bn(16, 2), name="bn2"))
        net.add(Binarize(name="sign2"))
        net.add(Flatten(name="flatten"))
        net.add(BinaryDense(12 * 12 * 16, 24, rng=3, output_binary=False,
                            name="fc1"))
        net.add(BatchNorm2d(self._bn(24, 4), name="bn_fc"))
        net.add(Binarize(name="sign_fc"))
        net.add(BinaryDense(24, 5, rng=5, output_binary=False, name="fc2"))
        plan = plan_mod.get_plan(net)
        # conv2+bn2+sign2 and fc1+bn_fc+sign_fc each collapse into one step.
        assert len(plan.steps) == len(net.layers) - 4
        spans = [s.layer_stop - s.layer_start for s in plan.steps if s.fused]
        assert spans.count(3) == 2
        images = rng.integers(0, 256, size=(2, 12, 12, 3)).astype(np.uint8)
        expected = net.forward(images)
        np.testing.assert_array_equal(plan.execute(images).data, expected.data)

    def test_bn_without_binarize_is_not_folded(self, rng):
        net = Network("no-fold", input_shape=(8, 8, 4), input_dtype="float32")
        net.add(BinaryConv2d(4, 8, 3, padding=1, rng=1, output_binary=False,
                             name="conv"))
        net.add(BatchNorm2d(self._bn(8, 9), name="bn"))
        plan = plan_mod.get_plan(net)
        assert plan.fused_step_count == 0
        x = rng.normal(size=(2, 8, 8, 4)).astype(np.float32)
        np.testing.assert_array_equal(plan.execute(x).data, net.forward(x).data)


class TestPlanCacheInvalidation:
    def test_plan_is_cached_and_warm_compiles(self):
        net = zoo_network("MicroCNN")
        net.warm()
        plan = plan_mod.get_plan(net)
        assert plan_mod.get_plan(net) is plan
        assert net._plan_cache is plan

    def test_weight_reassignment_never_serves_stale_plan(self, rng):
        net = build_phonebit_network(get_serving_config("MicroCNN"), rng=11)
        engine = PhoneBitEngine()
        images = rng.integers(0, 256, size=(2,) + net.input_shape).astype(np.uint8)
        before = engine.run_batch(net, images, collect_estimate=False)
        plan_before = plan_mod.get_plan(net)
        conv = next(l for l in net.layers if isinstance(l, BinaryConv2d))
        conv.weight_bits = 1 - conv.weight_bits
        after = engine.run_batch(net, images, collect_estimate=False)
        assert plan_mod.get_plan(net) is not plan_before
        assert not np.array_equal(before.output.data, after.output.data)
        # The recompiled plan matches the layerwise path for the new weights.
        np.testing.assert_array_equal(after.output.data, net.forward(images).data)

    def test_adopt_packed_weights_never_serves_stale_plan(self, rng):
        """Re-adopting packed weights must invalidate the cached plan.

        Packed-only layers (shared-memory attach) keep ``_weight_bits`` as a
        sentinel; the plan snapshot keys on its identity, so every adoption
        must install a *fresh* sentinel — a constant one would let a stale
        plan keep serving the previous filters.
        """
        from repro.core import model_format

        net = build_phonebit_network(get_serving_config("MicroCNN"), rng=11)
        zc = model_format.load_network_from_buffer(
            model_format.serialize_network(net), zero_copy=True
        )
        from repro.core import binary_conv

        engine = PhoneBitEngine()
        images = rng.integers(0, 256, size=(2,) + zc.input_shape).astype(np.uint8)
        before = engine.run_batch(zc, images, collect_estimate=False)
        plan_before = plan_mod.get_plan(zc)
        conv = next(l for l in zc.layers if isinstance(l, BinaryConv2d))
        flipped_bits = 1 - conv.weight_bits  # also exercises lazy unpack
        # A mere inspection read must NOT invalidate the warm plan...
        assert plan_mod.get_plan(zc) is plan_before
        # ...but adopting new packed weights must.
        conv.adopt_packed_weights(
            binary_conv.pack_weights(flipped_bits, word_size=conv.word_size)
        )
        assert plan_mod.get_plan(zc) is not plan_before
        after = engine.run_batch(zc, images, collect_estimate=False)
        assert not np.array_equal(before.output.data, after.output.data)
        np.testing.assert_array_equal(after.output.data, zc.forward(images).data)

    def test_batchnorm_reassignment_invalidates(self, rng, random_batchnorm):
        net = Network("bn-swap", input_shape=(8, 8, 3), input_dtype="uint8")
        net.add(InputConv2d(3, 8, 3, padding=1, rng=1, name="conv1"))
        net.add(BinaryConv2d(8, 8, 3, padding=1, rng=2, output_binary=False,
                             name="conv2"))
        bn = BatchNorm2d(random_batchnorm(8, seed=1), name="bn")
        net.add(bn)
        net.add(Binarize(name="sign"))
        images = rng.integers(0, 256, size=(2, 8, 8, 3)).astype(np.uint8)
        plan_before = plan_mod.get_plan(net)
        baseline = plan_before.execute(images)
        np.testing.assert_array_equal(baseline.data, net.forward(images).data)
        bn.params = random_batchnorm(8, seed=2)
        plan_after = plan_mod.get_plan(net)
        assert plan_after is not plan_before
        np.testing.assert_array_equal(
            plan_after.execute(images).data, net.forward(images).data
        )

    def test_layer_list_change_invalidates(self):
        net = zoo_network("MicroCNN")
        plan = plan_mod.get_plan(net)
        layer = net.layers.pop()
        try:
            assert not plan.is_current(net)
        finally:
            net.layers.append(layer)


class TestEngineIntegration:
    def test_run_and_run_batch_match_unfused_engine(self, tiny_bnn_network,
                                                    tiny_images):
        fused = PhoneBitEngine(use_plan=True, num_threads=2)
        unfused = PhoneBitEngine(use_plan=False)
        np.testing.assert_array_equal(
            fused.run(tiny_bnn_network, tiny_images).output.data,
            unfused.run(tiny_bnn_network, tiny_images).output.data,
        )
        np.testing.assert_array_equal(
            fused.run_batch(tiny_bnn_network, tiny_images).output.data,
            unfused.run_batch(tiny_bnn_network, tiny_images).output.data,
        )

    def test_layer_wall_times_cover_all_layers(self, tiny_bnn_network, tiny_images):
        report = PhoneBitEngine().run_batch(tiny_bnn_network, tiny_images)
        assert set(report.layer_wall_ms) == {
            layer.name for layer in tiny_bnn_network.layers
        }

    def test_chunk_bytes_heuristic_is_monotone_and_bounded(self, tiny_bnn_network):
        engine = PhoneBitEngine()
        small = engine.auto_chunk_size(tiny_bnn_network, 64, chunk_bytes=1)
        large = engine.auto_chunk_size(tiny_bnn_network, 64, chunk_bytes=2**40)
        assert small == 1  # budget below one image still runs one at a time
        assert large == 64
        mid = engine.auto_chunk_size(
            tiny_bnn_network, 64,
            chunk_bytes=4 * plan_mod.get_plan(tiny_bnn_network).per_sample_bytes,
        )
        assert 1 <= mid <= 64
        assert small <= mid <= large
        with pytest.raises(ValueError):
            engine.auto_chunk_size(tiny_bnn_network, 64, chunk_bytes=0)

    def test_chunked_by_bytes_matches_unchunked(self, tiny_bnn_network, rng):
        images = rng.integers(0, 256, size=(5, 16, 16, 3)).astype(np.uint8)
        engine = PhoneBitEngine()
        whole = engine.run_batch(tiny_bnn_network, images)
        per_sample = plan_mod.get_plan(tiny_bnn_network).per_sample_bytes
        chunked = engine.run_batch(
            tiny_bnn_network, images, chunk_bytes=2 * per_sample
        )
        np.testing.assert_array_equal(whole.output.data, chunked.output.data)
        with pytest.raises(ValueError):
            engine.run_batch(tiny_bnn_network, images, chunk_bytes=-1)


class TestThreadConfig:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert plan_mod.default_num_threads() == 3

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "zero")
        with pytest.raises(ValueError):
            plan_mod.default_num_threads()
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        with pytest.raises(ValueError):
            plan_mod.default_num_threads()

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert plan_mod.default_num_threads() == (os.cpu_count() or 1)


class TestBufferArena:
    def test_views_grow_and_are_reused(self):
        arena = plan_mod.BufferArena()
        a = arena.view("x", (4, 8), np.int64)
        assert a.shape == (4, 8) and a.dtype == np.int64
        before = arena.nbytes
        b = arena.view("x", (2, 8), np.int64)  # smaller: reuses the buffer
        assert arena.nbytes == before
        b[:] = 7
        c = arena.view("x", (16, 16), np.float64)  # larger: grows
        assert c.shape == (16, 16) and arena.nbytes > before
