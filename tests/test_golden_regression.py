"""Golden-file regression tests for the paper-facing numbers.

The gpusim cost model and the model configs jointly determine the repo's
reproduction of Table II (model sizes) and Table III (runtime comparison).
Those subsystems get refactored for performance; these tests pin the
*numbers* so a refactor that silently drifts a paper figure fails loudly.

The golden snapshots live in ``tests/golden/*.json``.  After an
*intentional* change (e.g. a cost-model fix), regenerate them with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_regression.py

and review the diff like any other code change.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import experiments
from repro.models import BENCHMARK_MODELS, get_model_config, model_size_report

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))

#: Relative tolerance for float comparisons.  The snapshots are produced by
#: a deterministic analytical model, so this only absorbs float round-trip
#: noise across platforms, not real drift.
RTOL = 1e-9


def current_model_sizes() -> dict:
    """Table II inputs: size/parameter/MAC figures per benchmark model."""
    sizes = {}
    for name in BENCHMARK_MODELS:
        report = model_size_report(get_model_config(name))
        sizes[name] = {
            "full_precision_mb": report["full_precision_mb"],
            "bnn_mb": report["bnn_mb"],
            "compression_ratio": report["compression_ratio"],
            "binary_parameters": report["parameters"]["binary"],
            "float32_parameters": report["parameters"]["float32"],
            "macs": report["macs"],
        }
    return sizes


def current_runtimes() -> dict:
    """Table III: per device/model/framework simulated runtime (or failure)."""
    table = experiments.table3_runtime()
    runtimes = {}
    for device, per_model in table.results.items():
        runtimes[device] = {}
        for model, per_framework in per_model.items():
            runtimes[device][model] = {
                framework: (
                    result.runtime_ms if result.succeeded else result.status
                )
                for framework, result in per_framework.items()
            }
    return runtimes


def _load_or_regen(filename: str, current: dict) -> dict:
    path = GOLDEN_DIR / filename
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    if not path.exists():
        pytest.fail(
            f"golden file {path} is missing; generate it with "
            "REPRO_REGEN_GOLDEN=1"
        )
    return json.loads(path.read_text())


def assert_matches_golden(golden, current, path="$"):
    """Deep comparison with float tolerance and precise failure paths."""
    if isinstance(golden, dict):
        assert isinstance(current, dict), f"{path}: type changed"
        assert set(golden) == set(current), (
            f"{path}: keys changed {sorted(set(golden) ^ set(current))}"
        )
        for key in golden:
            assert_matches_golden(golden[key], current[key], f"{path}.{key}")
    elif isinstance(golden, float) or isinstance(current, float):
        assert current == pytest.approx(golden, rel=RTOL), (
            f"{path}: {current!r} drifted from golden {golden!r}"
        )
    else:
        assert current == golden, (
            f"{path}: {current!r} drifted from golden {golden!r}"
        )


class TestGoldenModelSizes:
    def test_table2_sizes_match_golden(self):
        current = current_model_sizes()
        golden = _load_or_regen("table2_model_sizes.json", current)
        assert_matches_golden(golden, current)

    def test_golden_sizes_stay_near_paper(self):
        # Belt and braces: the snapshot itself must stay in the paper's
        # ballpark, so nobody can "fix" a drift by regenerating blindly.
        golden = json.loads(
            (GOLDEN_DIR / "table2_model_sizes.json").read_text()
        )
        for model, paper in experiments.PAPER_TABLE2.items():
            measured = golden[model]["full_precision_mb"]
            assert measured == pytest.approx(paper["full_mb"], rel=0.35), model


class TestGoldenRuntimes:
    def test_table3_runtimes_match_golden(self):
        current = current_runtimes()
        golden = _load_or_regen("table3_runtime_ms.json", current)
        assert_matches_golden(golden, current)

    def test_golden_runtime_ordering_matches_paper(self):
        # PhoneBit must stay the fastest framework on every (device, model)
        # cell where the paper reports it fastest — which is all of them.
        golden = json.loads((GOLDEN_DIR / "table3_runtime_ms.json").read_text())
        for device, per_model in golden.items():
            for model, per_framework in per_model.items():
                phonebit = per_framework["PhoneBit"]
                assert isinstance(phonebit, float), (device, model)
                for framework, runtime in per_framework.items():
                    if framework == "PhoneBit" or not isinstance(runtime, float):
                        continue
                    assert phonebit < runtime, (device, model, framework)
