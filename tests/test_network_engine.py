"""Tests for the Network container and the PhoneBit engine."""

import numpy as np
import pytest

from repro.core.engine import PhoneBitEngine
from repro.core.layers import BinaryConv2d, Dense, MaxPool2d, Relu
from repro.core.network import Network
from repro.gpusim.device import snapdragon_820, snapdragon_855
from repro.gpusim.kernel import OpKind


class TestNetwork:
    def test_forward_shapes(self, tiny_bnn_network, tiny_images):
        out = tiny_bnn_network.forward(tiny_images)
        assert out.shape == (2, 10)
        assert out.dtype == np.float32

    def test_forward_is_deterministic(self, tiny_bnn_network, tiny_images):
        first = tiny_bnn_network.forward(tiny_images)
        second = tiny_bnn_network.forward(tiny_images)
        np.testing.assert_array_equal(first.data, second.data)

    def test_collect_activations(self, tiny_bnn_network, tiny_images):
        out, activations = tiny_bnn_network.forward(tiny_images, collect_activations=True)
        assert len(activations) == len(tiny_bnn_network)
        np.testing.assert_array_equal(activations[-1].data, out.data)

    def test_layer_shapes(self, tiny_bnn_network):
        shapes = tiny_bnn_network.layer_shapes()
        assert shapes[0][1] == (16, 16, 3)
        assert shapes[-1][2] == (10,)

    def test_input_shape_validated(self, tiny_bnn_network, rng):
        with pytest.raises(ValueError):
            tiny_bnn_network.forward(rng.integers(0, 256, size=(1, 8, 8, 3)).astype(np.uint8))

    def test_add_rejects_non_layer(self):
        net = Network("x", input_shape=(8, 8, 3))
        with pytest.raises(TypeError):
            net.add("not a layer")

    def test_add_rolls_back_on_shape_error(self):
        net = Network("x", input_shape=(8, 8, 3))
        with pytest.raises(ValueError):
            net.add(BinaryConv2d(16, 8, 3, rng=0))  # channel mismatch
        assert len(net) == 0

    def test_param_accounting(self, tiny_bnn_network):
        count = tiny_bnn_network.param_count()
        assert count.binary > 0 and count.float32 > 0
        assert tiny_bnn_network.compressed_size_bytes() < tiny_bnn_network.full_precision_size_bytes()
        assert tiny_bnn_network.compression_ratio() > 10

    def test_summary_mentions_every_layer(self, tiny_bnn_network):
        summary = tiny_bnn_network.summary()
        for layer in tiny_bnn_network:
            assert layer.name in summary

    def test_iteration_and_len(self, tiny_bnn_network):
        assert len(list(tiny_bnn_network)) == len(tiny_bnn_network) == 7


class TestEngineEstimation:
    def test_estimate_produces_per_layer_times(self, tiny_bnn_network):
        engine = PhoneBitEngine(snapdragon_855())
        report = engine.estimate(tiny_bnn_network)
        assert report.latency_ms > 0
        # Flatten emits no kernel; every other layer is timed.
        assert len(report.layer_times_ms) == len(tiny_bnn_network) - 1
        assert report.fps == pytest.approx(1000.0 / report.latency_ms)

    def test_run_attaches_output(self, tiny_bnn_network, tiny_images):
        engine = PhoneBitEngine(snapdragon_855())
        report = engine.run(tiny_bnn_network, tiny_images)
        assert report.output is not None
        assert report.output.shape == (2, 10)

    def test_workloads_use_bitwise_kernels_for_binary_layers(self, tiny_bnn_network):
        engine = PhoneBitEngine(snapdragon_855())
        workloads = engine.network_workloads(tiny_bnn_network)
        by_name = {w.layer_name: w for w in workloads}
        assert by_name["conv2"].kernels[0].op_kind is OpKind.BITWISE
        assert by_name["conv2"].kernels[0].fused_layers == 3
        assert by_name["fc2"].layer_type == "binary_dense"

    def test_input_layer_emits_bitplane_split(self, tiny_bnn_network):
        engine = PhoneBitEngine(snapdragon_855())
        workloads = engine.network_workloads(tiny_bnn_network)
        conv1 = next(w for w in workloads if w.layer_name == "conv1")
        assert any("bitplane" in k.name for k in conv1.kernels)

    def test_unfused_engine_emits_more_kernels(self, tiny_bnn_network):
        fused = PhoneBitEngine(snapdragon_855(), fused=True)
        unfused = PhoneBitEngine(snapdragon_855(), fused=False)
        fused_kernels = sum(len(w.kernels) for w in fused.network_workloads(tiny_bnn_network))
        unfused_kernels = sum(len(w.kernels) for w in unfused.network_workloads(tiny_bnn_network))
        assert unfused_kernels > fused_kernels

    def test_unfused_is_slower(self, tiny_bnn_network):
        fused = PhoneBitEngine(snapdragon_855(), fused=True).estimate(tiny_bnn_network)
        unfused = PhoneBitEngine(snapdragon_855(), fused=False).estimate(tiny_bnn_network)
        assert unfused.latency_ms > fused.latency_ms

    def test_divergent_is_slower(self, tiny_bnn_network):
        fast = PhoneBitEngine(snapdragon_855(), branchless=True).estimate(tiny_bnn_network)
        slow = PhoneBitEngine(snapdragon_855(), branchless=False).estimate(tiny_bnn_network)
        assert slow.latency_ms > fast.latency_ms

    def test_older_device_is_slower(self, tiny_bnn_network):
        new = PhoneBitEngine(snapdragon_855()).estimate(tiny_bnn_network)
        old = PhoneBitEngine(snapdragon_820()).estimate(tiny_bnn_network)
        assert old.latency_ms > new.latency_ms

    def test_float_head_network(self, rng):
        net = Network("float-head", input_shape=(8, 8, 4), input_dtype="float32")
        net.add(BinaryConv2d(4, 8, 3, padding=1, rng=1, output_binary=False, name="bconv"))
        net.add(Relu(name="relu"))
        net.add(MaxPool2d(2, name="pool"))
        from repro.core.layers import Flatten

        net.add(Flatten(name="flat"))
        net.add(Dense(4 * 4 * 8, 3, rng=2, name="head"))
        x = rng.normal(size=(2, 8, 8, 4)).astype(np.float32)
        out = net.forward(x)
        assert out.shape == (2, 3)
        report = PhoneBitEngine(snapdragon_855()).estimate(net)
        assert report.latency_ms > 0

    def test_unknown_layer_type_rejected(self):
        from repro.core.layers.base import Layer

        class Mystery(Layer):
            def output_shape(self, input_shape):
                return input_shape

            def forward(self, x):
                return x

        net = Network("mystery", input_shape=(4, 4, 2))
        net.add(Mystery())
        with pytest.raises(TypeError):
            PhoneBitEngine(snapdragon_855()).network_workloads(net)
