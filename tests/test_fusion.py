"""Tests for conv+BN+binarize layer integration (Eqns. 3–8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fusion


class TestBatchNormParams:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fusion.BatchNormParams(
                gamma=np.ones(3), beta=np.zeros(3), mean=np.zeros(3), var=np.ones(2)
            )

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            fusion.BatchNormParams(
                gamma=np.ones(2), beta=np.zeros(2), mean=np.zeros(2),
                var=np.array([1.0, -0.1]),
            )

    def test_sigma_includes_eps(self):
        bn = fusion.BatchNormParams(
            gamma=np.ones(1), beta=np.zeros(1), mean=np.zeros(1), var=np.zeros(1),
            eps=1e-4,
        )
        assert bn.sigma[0] == pytest.approx(1e-2)

    def test_channels(self, random_batchnorm):
        assert random_batchnorm(7).channels == 7


class TestThreshold:
    def test_identity_batchnorm_threshold_is_negative_bias(self):
        bn = fusion.BatchNormParams(
            gamma=np.ones(4), beta=np.zeros(4), mean=np.zeros(4), var=np.ones(4)
        )
        bias = np.array([1.0, -2.0, 0.5, 0.0])
        np.testing.assert_allclose(fusion.compute_threshold(bn, bias), -bias)

    def test_eqn6_formula(self, random_batchnorm):
        bn = random_batchnorm(5, seed=3)
        bias = np.linspace(-1, 1, 5)
        expected = bn.mean - bn.beta * bn.sigma / bn.gamma - bias
        np.testing.assert_allclose(fusion.compute_threshold(bn, bias), expected)

    def test_gamma_zero_rejected(self):
        bn = fusion.BatchNormParams(
            gamma=np.array([1.0, 0.0]), beta=np.zeros(2), mean=np.zeros(2),
            var=np.ones(2),
        )
        with pytest.raises(ValueError):
            fusion.compute_threshold(bn)

    def test_bias_shape_checked(self, random_batchnorm):
        with pytest.raises(ValueError):
            fusion.compute_threshold(random_batchnorm(4), bias=np.zeros(3))


class TestFusedEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_fused_equals_unfused(self, random_batchnorm, seed):
        rng = np.random.default_rng(seed)
        channels = 9
        bn = random_batchnorm(channels, seed=seed)
        bias = rng.normal(size=channels)
        x1 = rng.integers(-30, 30, size=(4, 6, 6, channels)).astype(np.float64)
        threshold = fusion.compute_threshold(bn, bias)
        fused = fusion.fused_binarize(x1, threshold, bn.gamma)
        reference = fusion.unfused_block_reference(x1, bn, bias)
        np.testing.assert_array_equal(fused, reference)

    def test_negative_gamma_flips_comparison(self):
        bn = fusion.BatchNormParams(
            gamma=np.array([-1.0]), beta=np.zeros(1), mean=np.zeros(1), var=np.ones(1)
        )
        threshold = fusion.compute_threshold(bn)
        assert fusion.fused_binarize(np.array([[5.0]]), threshold, bn.gamma)[0, 0] == 0
        assert fusion.fused_binarize(np.array([[-5.0]]), threshold, bn.gamma)[0, 0] == 1

    def test_boundary_value_binarizes_to_one(self, random_batchnorm):
        bn = random_batchnorm(3, seed=9)
        threshold = fusion.compute_threshold(bn)
        x1 = np.broadcast_to(threshold, (2, 3)).copy()
        np.testing.assert_array_equal(
            fusion.fused_binarize(x1, threshold, bn.gamma), np.ones((2, 3), dtype=np.uint8)
        )

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        batch=st.integers(1, 4),
        channels=st.integers(1, 16),
    )
    def test_fused_equals_unfused_property(self, seed, batch, channels):
        rng = np.random.default_rng(seed)
        gamma = rng.uniform(0.1, 2.0, channels) * rng.choice([-1, 1], channels)
        bn = fusion.BatchNormParams(
            gamma=gamma,
            beta=rng.normal(size=channels),
            mean=rng.normal(scale=3, size=channels),
            var=rng.uniform(0.1, 5, channels),
        )
        bias = rng.normal(size=channels)
        x1 = rng.integers(-50, 50, size=(batch, channels)).astype(np.float64)
        threshold = fusion.compute_threshold(bn, bias)
        np.testing.assert_array_equal(
            fusion.fused_binarize(x1, threshold, bn.gamma),
            fusion.unfused_block_reference(x1, bn, bias),
        )


class TestAffineFold:
    def test_fold_matches_batchnorm(self, random_batchnorm):
        rng = np.random.default_rng(7)
        bn = random_batchnorm(6, seed=7)
        bias = rng.normal(size=6)
        x1 = rng.normal(scale=10, size=(5, 6))
        scale, offset = fusion.fold_batchnorm_affine(bn, bias)
        folded = scale * x1 + offset
        reference = fusion.batchnorm_forward(x1 + bias, bn)
        np.testing.assert_allclose(folded, reference, rtol=1e-10)
