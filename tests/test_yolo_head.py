"""Tests for YOLOv2 head decoding and non-maximum suppression."""

import numpy as np
import pytest

from repro.datasets.detection import BoundingBox
from repro.models.yolo_head import (
    Detection,
    VOC_ANCHORS,
    decode_head,
    detect,
    non_maximum_suppression,
    sigmoid,
    softmax,
)


def _head_with_one_object(grid=13, num_classes=20, anchor_index=1,
                          row=6, col=6, class_index=7, logit=8.0):
    """A synthetic head with exactly one confident detection."""
    head = np.full((grid, grid, len(VOC_ANCHORS) * (5 + num_classes)), -10.0)
    head = head.reshape(grid, grid, len(VOC_ANCHORS), 5 + num_classes)
    head[row, col, anchor_index, 0:2] = 0.0      # center of the cell
    head[row, col, anchor_index, 2:4] = 0.0      # anchor-sized box
    head[row, col, anchor_index, 4] = logit      # objectness
    head[row, col, anchor_index, 5 + class_index] = logit
    return head.reshape(grid, grid, -1)


class TestMathHelpers:
    def test_sigmoid_range_and_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert 0.0 <= values[0] < 1e-6 and 1 - 1e-6 < values[1] <= 1.0

    def test_softmax_sums_to_one(self, rng):
        probs = softmax(rng.normal(size=(4, 7)))
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), rtol=1e-9)


class TestDecode:
    def test_single_confident_object(self):
        head = _head_with_one_object()
        detections = decode_head(head, score_threshold=0.5)
        assert len(detections) == 1
        detection = detections[0]
        assert detection.class_index == 7
        assert detection.score > 0.9
        assert detection.box.x_center == pytest.approx((6 + 0.5) / 13)
        assert detection.box.y_center == pytest.approx((6 + 0.5) / 13)
        expected_w = VOC_ANCHORS[1][0] / 13
        assert detection.box.width == pytest.approx(expected_w, rel=1e-6)

    def test_empty_head_yields_no_detections(self):
        head = np.full((13, 13, 125), -12.0)
        assert decode_head(head) == []

    def test_threshold_filters(self):
        head = _head_with_one_object(logit=1.0)  # weakly confident
        strict = decode_head(head, score_threshold=0.9)
        lenient = decode_head(head, score_threshold=0.1)
        assert len(strict) <= len(lenient)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            decode_head(np.zeros((13, 13)))
        with pytest.raises(ValueError):
            decode_head(np.zeros((13, 13, 100)))

    def test_boxes_stay_normalized(self, rng):
        head = rng.normal(scale=3.0, size=(13, 13, 125))
        for detection in decode_head(head, score_threshold=0.2):
            box = detection.box
            assert 0.0 <= box.x_center <= 1.0
            assert 0.0 <= box.y_center <= 1.0
            assert 0.0 < box.width <= 1.0
            assert 0.0 < box.height <= 1.0


class TestNms:
    def _detection(self, score, x=0.5, cls=0):
        return Detection(BoundingBox(cls, x, 0.5, 0.2, 0.2), score)

    def test_overlapping_boxes_suppressed(self):
        kept = non_maximum_suppression(
            [self._detection(0.9), self._detection(0.8, x=0.51)]
        )
        assert len(kept) == 1
        assert kept[0].score == 0.9

    def test_distant_boxes_kept(self):
        kept = non_maximum_suppression(
            [self._detection(0.9, x=0.2), self._detection(0.8, x=0.8)]
        )
        assert len(kept) == 2

    def test_per_class_nms_keeps_different_classes(self):
        kept = non_maximum_suppression(
            [self._detection(0.9, cls=0), self._detection(0.8, x=0.51, cls=1)],
            per_class=True,
        )
        assert len(kept) == 2
        kept_global = non_maximum_suppression(
            [self._detection(0.9, cls=0), self._detection(0.8, x=0.51, cls=1)],
            per_class=False,
        )
        assert len(kept_global) == 1

    def test_detect_end_to_end(self):
        head = _head_with_one_object()
        detections = detect(head, score_threshold=0.5)
        assert len(detections) == 1
        assert detections[0].class_index == 7
