"""Tests for the compressed ``.pbit`` model format."""

import io

import numpy as np
import pytest

from repro.core import model_format
from repro.core.layers import BatchNorm2d, Dense, FloatConv2d
from repro.core.network import Network


class TestRoundTrip:
    def test_bytes_roundtrip_preserves_outputs(self, tiny_bnn_network, tiny_images):
        buffer = io.BytesIO()
        payload_bytes = model_format.save_network(tiny_bnn_network, buffer)
        assert payload_bytes > 0
        buffer.seek(0)
        restored = model_format.load_network(buffer)
        original = tiny_bnn_network.forward(tiny_images)
        roundtripped = restored.forward(tiny_images)
        np.testing.assert_allclose(original.data, roundtripped.data, rtol=1e-4, atol=1e-3)

    def test_file_roundtrip(self, tmp_path, tiny_bnn_network, tiny_images):
        path = tmp_path / "tiny.pbit"
        model_format.save_network(tiny_bnn_network, str(path))
        restored = model_format.load_network(str(path))
        np.testing.assert_allclose(
            tiny_bnn_network.forward(tiny_images).data,
            restored.forward(tiny_images).data,
            rtol=1e-4, atol=1e-3,
        )

    def test_buffer_load_zero_copy_matches_copy_load(self, tiny_bnn_network,
                                                     tiny_images):
        raw = model_format.serialize_network(tiny_bnn_network)
        copied = model_format.load_network_from_buffer(raw)
        zero_copy = model_format.load_network_from_buffer(raw, zero_copy=True)
        # Bit-identical across load modes: the zero-copy path changes memory
        # ownership, never values.
        np.testing.assert_array_equal(
            copied.forward(tiny_images).data,
            zero_copy.forward(tiny_images).data,
        )

    def test_zero_copy_weights_are_frozen_views(self, tiny_bnn_network):
        raw = bytearray(model_format.serialize_network(tiny_bnn_network))
        network = model_format.load_network_from_buffer(raw, zero_copy=True)
        saw_packed = False
        for layer in network.layers:
            packed = getattr(layer, "weights_packed", None)
            if packed is not None and not isinstance(packed, property):
                saw_packed = True
                assert not packed.flags.owndata  # a view into ``raw``
                assert not packed.flags.writeable
        assert saw_packed

    def test_zero_copy_lazy_weight_bits_round_trip(self, tiny_bnn_network):
        """Unpacked bits materialize lazily and match the original."""
        raw = model_format.serialize_network(tiny_bnn_network)
        network = model_format.load_network_from_buffer(raw, zero_copy=True)
        for original, restored in zip(tiny_bnn_network.layers, network.layers):
            bits = getattr(original, "weight_bits", None)
            if bits is None:
                continue
            np.testing.assert_array_equal(bits, restored.weight_bits)
            # Materializing the bits must not invalidate the packed view.
            assert not restored.weights_packed.flags.owndata

    def test_metadata_and_names_preserved(self, tiny_bnn_network):
        tiny_bnn_network.metadata["dataset"] = "synthetic"
        buffer = io.BytesIO()
        model_format.save_network(tiny_bnn_network, buffer)
        buffer.seek(0)
        restored = model_format.load_network(buffer)
        assert restored.name == tiny_bnn_network.name
        assert restored.metadata["dataset"] == "synthetic"
        assert [l.name for l in restored] == [l.name for l in tiny_bnn_network]

    def test_compressed_file_is_much_smaller_than_float(self, tiny_bnn_network):
        buffer = io.BytesIO()
        model_format.save_network(tiny_bnn_network, buffer)
        file_size = len(buffer.getvalue())
        assert file_size < tiny_bnn_network.full_precision_size_bytes() / 4

    def test_float_layers_roundtrip(self, rng):
        net = Network("float", input_shape=(6, 6, 3), input_dtype="float32")
        net.add(FloatConv2d(3, 4, 3, padding=1, activation="relu", rng=1, name="conv"))
        net.add(BatchNorm2d.identity(4, name="bn"))
        from repro.core.layers import Flatten

        net.add(Flatten(name="flat"))
        net.add(Dense(6 * 6 * 4, 5, activation="softmax", rng=2, name="head"))
        buffer = io.BytesIO()
        model_format.save_network(net, buffer)
        buffer.seek(0)
        restored = model_format.load_network(buffer)
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        np.testing.assert_allclose(net.forward(x).data, restored.forward(x).data,
                                   rtol=1e-5, atol=1e-5)


class TestErrorHandling:
    def test_bad_magic_rejected(self):
        with pytest.raises(model_format.ModelFormatError):
            model_format.load_network(io.BytesIO(b"NOPE" + b"\x00" * 32))

    def test_bad_version_rejected(self, tiny_bnn_network):
        buffer = io.BytesIO()
        model_format.save_network(tiny_bnn_network, buffer)
        raw = bytearray(buffer.getvalue())
        raw[4] = 99
        with pytest.raises(model_format.ModelFormatError):
            model_format.load_network(io.BytesIO(bytes(raw)))

    def test_unserializable_layer_rejected(self):
        from repro.core.layers.base import Layer

        class Custom(Layer):
            def output_shape(self, input_shape):
                return input_shape

            def forward(self, x):
                return x

        net = Network("custom", input_shape=(4, 4, 1))
        net.add(Custom())
        with pytest.raises(model_format.ModelFormatError):
            model_format.save_network(net, io.BytesIO())
