"""Tests for the compiled kernel backends and the per-host auto-tuner.

The load-bearing property is the *bit-exactness spine*: a compiled kernel
may only replace the NumPy reference when its output is bit-for-bit
identical — on synthetic probes, on every step's real filters, and on
whole zoo networks across thread counts and batch sizes.  A host without
a toolchain (simulated via ``REPRO_NO_CC`` + an empty build cache) must
degrade to the NumPy path with unchanged results, never to an error.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.core import backends, binary_conv, bitpack
from repro.core import plan as plan_mod
from repro.core.backends import tuner
from repro.core.engine import PhoneBitEngine
from repro.core.plan import default_num_threads, positive_int
from repro.models.zoo import SERVING_MODELS, build_phonebit_network, get_serving_config

#: Reduced input resolutions so the paper-scale networks stay test-sized
#: (same idiom as tests/test_plan.py).
_TEST_SIZES = {"VGG16": 32, "AlexNet": 67, "YOLOv2 Tiny": 32}

_NETWORK_CACHE = {}


def zoo_network(name):
    """Build (once) a reduced-size network for a serving-zoo entry."""
    if name not in _NETWORK_CACHE:
        config = get_serving_config(name)
        size = _TEST_SIZES.get(config.name)
        if size is not None:
            config = dataclasses.replace(config, input_shape=(size, size, 3))
        _NETWORK_CACHE[name] = build_phonebit_network(config, rng=7)
    return _NETWORK_CACHE[name]


def compiled_impl():
    """The auto-resolved compiled backend, or skip when none builds here."""
    name, impl = backends.resolve_backend("auto")
    if impl is None:
        pytest.skip("no compiled backend available on this host")
    return name, impl


@pytest.fixture
def no_toolchain(monkeypatch, tmp_path):
    """Simulate a host with no C compiler and no prebuilt kernel cache."""
    monkeypatch.setenv("REPRO_NO_CC", "1")
    monkeypatch.setenv("REPRO_BACKEND_CACHE", str(tmp_path / "empty-cache"))
    backends._reset_for_tests()
    yield
    backends._reset_for_tests()


def _random_words(rng, shape, word_size):
    dtype = bitpack.word_dtype(word_size)
    return rng.integers(0, 2 ** word_size, size=shape, dtype=dtype)


class TestKernelBitExactness:
    """Per-kernel probes of the compiled backend against the NumPy reference."""

    @pytest.mark.parametrize("word_size", [8, 16, 32, 64])
    @pytest.mark.parametrize("cols", [1, 7, 64, 130])
    def test_fused_threshold_kernel(self, word_size, cols, rng):
        _, impl = compiled_impl()
        n_words = 5
        rows = 23
        a = _random_words(rng, (rows, n_words), word_size)
        b = _random_words(rng, (cols, n_words), word_size)
        length = n_words * word_size
        thresh = rng.integers(0, length, size=cols).astype(np.int32)
        flip = rng.integers(0, 2, size=cols).astype(bool)
        wc = bitpack.words_per_channel(cols, word_size)
        out_np = np.zeros((rows, wc), dtype=bitpack.word_dtype(word_size))
        out_c = np.zeros_like(out_np)
        # Split across row ranges so the tiling offsets are exercised.
        for r0, r1 in ((0, 9), (9, rows)):
            bitpack.fused_xor_threshold_rows(
                a, b, thresh, flip, out_np, r0, r1, word_size
            )
            impl.fused_xor_threshold_rows(
                a, b, thresh, flip, out_c, r0, r1, word_size
            )
        np.testing.assert_array_equal(out_np, out_c)

    @pytest.mark.parametrize("word_size", [8, 32, 64])
    def test_xor_popcount_gemm(self, word_size, rng):
        _, impl = compiled_impl()
        a = _random_words(rng, (17, 9), word_size)
        b = _random_words(rng, (12, 9), word_size)
        expected = bitpack.xor_popcount_gemm(a, b)
        got = np.empty_like(expected)
        impl.xor_popcount_gemm_rows(a, b, got, 0, 10)
        impl.xor_popcount_gemm_rows(a, b, got, 10, a.shape[0])
        np.testing.assert_array_equal(expected, got)

    @pytest.mark.parametrize("word_size", [8, 32, 64])
    @pytest.mark.parametrize("geometry", [
        (3, 1, 1), (3, 2, 1), (5, 2, 2), (2, 2, 0), (3, 1, 0),
    ])
    def test_packed_patch_extraction(self, word_size, geometry, rng):
        _, impl = compiled_impl()
        k, stride, padding = geometry
        packed = _random_words(rng, (2, 9, 7, 3), word_size)
        expected, oh, ow = binary_conv.packed_patch_matrix(
            packed, k, stride, padding
        )
        expected = np.ascontiguousarray(expected)
        got = np.empty_like(expected)
        impl.packed_patch_rows(packed, k, stride, padding, oh, ow,
                               got, 0, got.shape[0])
        np.testing.assert_array_equal(expected, got)


class TestZooBitExactness:
    """Whole-network equality: compiled selection vs the NumPy plan."""

    @pytest.mark.parametrize("model", sorted(SERVING_MODELS))
    @pytest.mark.parametrize("threads", [1, 4])
    def test_compiled_matches_numpy(self, model, threads, rng):
        name, _ = compiled_impl()
        network = zoo_network(model)
        plan = plan_mod.get_plan(network)
        for batch_size in (1, 17, 64):
            images = rng.integers(
                0, 256, size=(batch_size,) + tuple(network.input_shape)
            ).astype(np.uint8)
            plan.select_backend("numpy")
            reference = plan.execute(images, threads=threads).data.copy()
            report = plan.select_backend(name)
            assert any(value == name for value in report.values()), (
                f"{model}: no step adopted the {name} backend"
            )
            compiled = plan.execute(images, threads=threads).data
            np.testing.assert_array_equal(
                reference, compiled,
                err_msg=f"{model} batch={batch_size} threads={threads}",
            )

    def test_selection_report_shape(self):
        name, _ = compiled_impl()
        network = zoo_network("MicroCNN")
        plan = plan_mod.get_plan(network)
        report = plan.select_backend(name)
        assert plan.backend_report()["backend"] == name
        assert set(report.values()) <= {"numpy", name}
        for key, value in report.items():
            if "input-conv" in key or "layer " in key:
                # The exact-GEMM input conv and fallback layers never
                # adopt compiled kernels.
                assert value == "numpy"

    def test_selection_is_idempotent_and_switchable(self):
        name, impl = compiled_impl()
        network = zoo_network("MicroCNN")
        plan = plan_mod.get_plan(network)
        first = plan.select_backend(name)
        second = plan.select_backend(name)
        assert first == second
        assert any(
            getattr(step, "compiled", None) is impl for step in plan.steps
        )
        plan.select_backend("numpy")
        assert all(
            getattr(step, "compiled", None) is None for step in plan.steps
        )


class TestFallback:
    def test_explicit_compiled_backend_raises(self, no_toolchain):
        with pytest.raises(backends.BackendUnavailable):
            backends.resolve_backend("cffi")

    def test_auto_degrades_to_numpy_with_unchanged_results(
        self, no_toolchain, tiny_bnn_network, tiny_images
    ):
        plan = plan_mod.get_plan(tiny_bnn_network)
        report = plan.select_backend("auto")
        assert plan.backend_spec == "numpy"
        assert set(report.values()) == {"numpy"}
        out = plan.execute(tiny_images, threads=1)
        expected = tiny_bnn_network.forward(tiny_images)
        np.testing.assert_array_equal(out.data, expected.data)

    def test_availability_reports_reasons(self, no_toolchain):
        report = backends.availability()
        assert report["numpy"] is None
        assert isinstance(report["cffi"], str)  # a reason, not usable

    def test_engine_runs_with_masked_toolchain(self, no_toolchain,
                                               tiny_bnn_network, tiny_images):
        engine = PhoneBitEngine(num_threads=1)
        result = engine.run_batch(tiny_bnn_network, tiny_images,
                                  collect_estimate=False)
        np.testing.assert_array_equal(
            result.output.data, tiny_bnn_network.forward(tiny_images).data
        )
        assert engine.backend_report(tiny_bnn_network)["backend"] == "numpy"

    def test_mismatching_kernel_is_rejected_per_step(self):
        name, impl = compiled_impl()

        class Broken:
            """Wraps the real backend but corrupts the fused kernel."""

            name = "broken"

            def __init__(self, inner):
                self._inner = inner
                self.packed_patch_rows = inner.packed_patch_rows
                self.xor_popcount_gemm_rows = inner.xor_popcount_gemm_rows

            def fused_xor_threshold_rows(self, a, b, thresh, flip, out,
                                         r0, r1, word_size, col_tile=None):
                self._inner.fused_xor_threshold_rows(
                    a, b, thresh, flip, out, r0, r1, word_size
                )
                out[r0:r1] ^= 1  # flip a bit: must be caught by the probe

        network = zoo_network("MicroCNN")
        plan = plan_mod.get_plan(network)
        for step in plan.steps:
            if getattr(step, "fused", False) and not getattr(
                step, "is_input_conv", False
            ):
                assert backends.verify_fused_step(impl, step)
                assert not backends.verify_fused_step(Broken(impl), step)
        plan.select_backend("numpy")  # leave the shared plan clean


class TestTuner:
    def test_batch_bucket(self):
        assert tuner.batch_bucket(1) == 1
        assert tuner.batch_bucket(2) == 2
        assert tuner.batch_bucket(3) == 4
        assert tuner.batch_bucket(17) == 32
        assert tuner.batch_bucket(10_000) == 256
        with pytest.raises(ValueError):
            tuner.batch_bucket(0)

    def test_cache_round_trip_same_selection(self, tmp_path):
        network = zoo_network("MicroCNN")
        cache = tuner.TuningCache(str(tmp_path))
        config = tuner.tune_network(network, 8, repeats=1, cache=cache)
        digest = tuner.network_digest(network)
        # A fresh instance must reload the persisted record identically.
        reloaded = tuner.TuningCache(str(tmp_path)).lookup(digest, 8)
        assert reloaded == config
        # Every size in the bucket resolves to the same record.
        assert tuner.TuningCache(str(tmp_path)).lookup(digest, 5) == config
        assert tuner.TuningCache(str(tmp_path)).lookup(digest, 100) is None
        plan_mod.get_plan(network).select_backend("numpy")

    def test_corrupt_record_degrades_to_none(self, tmp_path):
        cache = tuner.TuningCache(str(tmp_path))
        digest = "a" * 64
        os.makedirs(cache.directory, exist_ok=True)
        with open(cache._path(digest), "w") as fh:
            fh.write("{ not json")
        assert cache.lookup(digest, 4) is None
        with open(cache._path(digest), "w") as fh:
            json.dump({"version": tuner._SCHEMA_VERSION, "entries": {
                cache._key(4): {"backend": "cffi", "threads": -3,
                                "row_tile": 512, "mean_ms": 1.0},
            }}, fh)
        assert tuner.TuningCache(str(tmp_path)).lookup(digest, 4) is None

    def test_tuned_threads_precedence(self, monkeypatch):
        tuned = tuner.TunedConfig(backend="numpy", threads=3, row_tile=256,
                                  col_tile=None, chunk_bytes=None, mean_ms=1.0)
        engine = PhoneBitEngine()
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert engine._resolve_execution(tuned) == (3, 256, None)
        # The environment override beats the tuned record ...
        monkeypatch.setenv("REPRO_NUM_THREADS", "2")
        assert engine._resolve_execution(tuned)[0] is None
        assert default_num_threads() == 2
        # ... and an explicit engine setting beats both.
        explicit = PhoneBitEngine(num_threads=5)
        assert explicit._resolve_execution(tuned)[0] == 5

    def test_thread_candidates_seeding(self):
        from repro.gpusim.cost_model import thread_candidates

        wide_first = thread_candidates(None, cpu_count=8)
        assert set(wide_first) == {1, 2, 4, 8}
        assert wide_first[0] == 8  # compute-bound default: wide first
        cost = PhoneBitEngine().estimate(zoo_network("MicroCNN")).run_cost
        assert 0.0 <= cost.compute_bound_fraction <= 1.0
        assert set(thread_candidates(cost, cpu_count=4)) == {1, 2, 4}


class TestThreadValidation:
    """The single validation path shared by env, CLI and tuned counts."""

    @pytest.mark.parametrize("bad", ["0", "-2", "x", "2.5", ""])
    def test_env_override_rejected_consistently(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_NUM_THREADS", bad)
        if bad == "":
            assert default_num_threads() >= 1  # blank means "unset"
        else:
            with pytest.raises(ValueError, match="must be a positive integer"):
                default_num_threads()

    def test_positive_int_accepts_and_rejects(self):
        assert positive_int(4, "n") == 4
        assert positive_int("7", "n") == 7
        assert positive_int(2.0, "n") == 2
        for bad in (0, -1, 2.5, "nope", None):
            with pytest.raises(ValueError, match="n must be a positive integer"):
                positive_int(bad, "n")

    def test_row_tile_validated_by_same_helper(self):
        with pytest.raises(ValueError, match="row_tile must be a positive"):
            plan_mod._row_tiles(100, 1, row_tile=0)


class TestCliSurface:
    def test_backend_choices_in_lockstep(self):
        from repro import cli

        assert tuple(cli.BACKEND_CHOICES) == tuple(backends.BACKEND_CHOICES)

    def test_parser_accepts_backend(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve-bench", "--backend", "numpy", "--batches", "1"]
        )
        assert args.backend == "numpy"
        worker = parser.parse_args(
            ["cluster-worker", "--connect", "tcp://127.0.0.1:1",
             "--backend", "cffi"]
        )
        assert worker.backend == "cffi"
        with pytest.raises(SystemExit):
            parser.parse_args(["serve-bench", "--backend", "fortran"])
