"""Regression tests for packed-weight caching and batched engine execution."""

import threading

import numpy as np
import pytest

from repro.core import binary_conv
from repro.core.engine import BatchInferenceReport, PhoneBitEngine
from repro.core.layers import BinaryConv2d, BinaryDense
from repro.core.layers import dense as dense_mod
from repro.core.tensor import Tensor


class TestConvWeightCache:
    def test_packing_is_lazy_and_cached(self):
        layer = BinaryConv2d(8, 4, 3, rng=0)
        first = layer.weights_packed
        assert layer.weights_packed is first  # cached object, not re-packed

    def test_assignment_invalidates_cache(self, rng):
        layer = BinaryConv2d(8, 4, 3, rng=0)
        before = layer.weights_packed
        new_bits = rng.integers(0, 2, size=(3, 3, 8, 4), dtype=np.uint8)
        layer.weight_bits = new_bits
        after = layer.weights_packed
        assert after is not before
        np.testing.assert_array_equal(
            after, binary_conv.pack_weights(new_bits, word_size=layer.word_size)
        )

    def test_assignment_validates_shape(self):
        layer = BinaryConv2d(8, 4, 3, rng=0)
        with pytest.raises(ValueError):
            layer.weight_bits = np.zeros((3, 3, 8, 5), dtype=np.uint8)

    def test_in_place_mutation_cannot_stale_the_cache(self, rng):
        # weight_bits is stored as a frozen copy: in-place edits raise
        # instead of silently bypassing cache invalidation, and mutating
        # the caller's original array does not alias the layer's copy.
        source = rng.integers(0, 2, size=(3, 3, 8, 4), dtype=np.uint8)
        layer = BinaryConv2d(8, 4, 3, weight_bits=source)
        packed_before = layer.weights_packed
        with pytest.raises(ValueError):
            layer.weight_bits[:] = 0
        source[:] = 0
        assert layer.weights_packed is packed_before
        np.testing.assert_array_equal(
            layer.weights_packed,
            binary_conv.pack_weights(layer.weight_bits, word_size=layer.word_size),
        )
        dense = BinaryDense(16, 4, rng=0)
        with pytest.raises(ValueError):
            dense.weight_bits[0, 0] = 1

    def test_repeated_engine_runs_do_not_repack(
        self, tiny_bnn_network, tiny_images, monkeypatch
    ):
        conv_packs = []
        dense_packs = []
        real_pack_weights = binary_conv.pack_weights
        real_pack_dense = dense_mod._pack_dense_weights
        monkeypatch.setattr(
            binary_conv,
            "pack_weights",
            lambda *a, **k: conv_packs.append(1) or real_pack_weights(*a, **k),
        )
        monkeypatch.setattr(
            dense_mod,
            "_pack_dense_weights",
            lambda *a, **k: dense_packs.append(1) or real_pack_dense(*a, **k),
        )
        engine = PhoneBitEngine()
        engine.run(tiny_bnn_network, tiny_images)
        packs_after_first = (len(conv_packs), len(dense_packs))
        assert packs_after_first == (2, 2)  # conv1+conv2, fc1+fc2: once each
        engine.run(tiny_bnn_network, tiny_images)
        engine.run(tiny_bnn_network, tiny_images)
        assert (len(conv_packs), len(dense_packs)) == packs_after_first

    def test_dense_cache_invalidation(self, rng):
        layer = BinaryDense(64, 16, rng=0)
        before = layer.weights_packed
        assert layer.weights_packed is before
        layer.weight_bits = rng.integers(0, 2, size=(64, 16), dtype=np.uint8)
        assert layer.weights_packed is not before
        with pytest.raises(ValueError):
            layer.weight_bits = np.zeros((64, 17), dtype=np.uint8)

    def test_reassignment_landing_mid_pack_cannot_stale_the_cache(
        self, rng, monkeypatch
    ):
        # Regression for the serving race: thread A reads ``weights_packed``
        # and starts packing the old bits; thread B reassigns ``weight_bits``
        # while that pack is in flight; A then stores its (now superseded)
        # result.  With the old two-field cache (bits + packed invalidated
        # separately) A's store overwrote B's invalidation, and every later
        # read returned packed weights for bits that were no longer the
        # layer's weights — permanently.  The cache now snapshots the exact
        # bits array each packing came from, so a stale store can never be
        # *served* for newer weights.  The reassignment is injected into the
        # middle of the pack deterministically via monkeypatch.
        layer = BinaryConv2d(8, 4, 3, rng=0)
        new_bits = rng.integers(0, 2, size=(3, 3, 8, 4), dtype=np.uint8)
        real_pack = binary_conv.pack_weights
        reassigned = []

        def pack_with_concurrent_reassignment(bits, **kwargs):
            result = real_pack(bits, **kwargs)
            if not reassigned:  # emulate the writer landing mid-pack
                reassigned.append(True)
                layer.weight_bits = new_bits
            return result

        monkeypatch.setattr(
            binary_conv, "pack_weights", pack_with_concurrent_reassignment
        )
        stale_candidate = layer.weights_packed  # packed from the *old* bits
        after = layer.weights_packed  # must reflect the reassigned weights
        monkeypatch.undo()
        np.testing.assert_array_equal(
            after, binary_conv.pack_weights(new_bits, word_size=layer.word_size)
        )
        assert not np.array_equal(after, stale_candidate)

    def test_dense_reassignment_mid_pack_cannot_stale_the_cache(
        self, rng, monkeypatch
    ):
        layer = BinaryDense(64, 16, rng=0)
        new_bits = rng.integers(0, 2, size=(64, 16), dtype=np.uint8)
        real_pack = dense_mod._pack_dense_weights
        reassigned = []

        def pack_with_concurrent_reassignment(bits, word_size):
            result = real_pack(bits, word_size)
            if not reassigned:
                reassigned.append(True)
                layer.weight_bits = new_bits
            return result

        monkeypatch.setattr(
            dense_mod, "_pack_dense_weights", pack_with_concurrent_reassignment
        )
        layer.weights_packed
        after = layer.weights_packed
        monkeypatch.undo()
        np.testing.assert_array_equal(
            after, dense_mod._pack_dense_weights(new_bits, layer.word_size)
        )

    def test_concurrent_readers_and_writer_stay_coherent(self, rng):
        # Stress the lock-free cache: readers hammer ``weights_packed`` while
        # a writer flips between two known weight sets.  Every observed
        # packing must be one of the two valid packings (never torn), and
        # the final state must be coherent.
        bits_a = rng.integers(0, 2, size=(3, 3, 8, 4), dtype=np.uint8)
        bits_b = 1 - bits_a
        layer = BinaryConv2d(8, 4, 3, weight_bits=bits_a)
        valid = {
            binary_conv.pack_weights(b, word_size=layer.word_size).tobytes()
            for b in (bits_a, bits_b)
        }
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                packed = layer.weights_packed
                if packed.tobytes() not in valid:
                    errors.append("torn packing observed")
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for _ in range(200):
            layer.weight_bits = bits_b
            layer.weight_bits = bits_a
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        assert not errors
        np.testing.assert_array_equal(
            layer.weights_packed,
            binary_conv.pack_weights(layer.weight_bits, word_size=layer.word_size),
        )

    def test_new_weights_change_the_output(self, rng):
        layer = BinaryConv2d(4, 4, 3, padding=1, output_binary=False, rng=0)
        x = Tensor(rng.standard_normal((1, 6, 6, 4)).astype(np.float32))
        out_before = layer.forward(x).data.copy()
        layer.weight_bits = 1 - layer.weight_bits  # flip every weight
        out_after = layer.forward(x).data
        assert not np.array_equal(out_before, out_after)


class TestRunBatch:
    def test_matches_run_output(self, tiny_bnn_network, tiny_images):
        engine = PhoneBitEngine()
        single = engine.run(tiny_bnn_network, tiny_images)
        batched = engine.run_batch(tiny_bnn_network, tiny_images)
        assert isinstance(batched, BatchInferenceReport)
        np.testing.assert_array_equal(single.output.data, batched.output.data)
        assert batched.batch_size == tiny_images.shape[0]

    def test_chunked_matches_unchunked(self, tiny_bnn_network, rng):
        images = rng.integers(0, 256, size=(5, 16, 16, 3)).astype(np.uint8)
        engine = PhoneBitEngine()
        whole = engine.run_batch(tiny_bnn_network, images)
        chunked = engine.run_batch(tiny_bnn_network, images, chunk_size=2)
        np.testing.assert_array_equal(whole.output.data, chunked.output.data)

    def test_per_layer_throughput_report(self, tiny_bnn_network, tiny_images):
        engine = PhoneBitEngine()
        report = engine.run_batch(tiny_bnn_network, tiny_images)
        layer_names = {layer.name for layer in tiny_bnn_network.layers}
        assert set(report.layer_wall_ms) == layer_names
        assert all(ms >= 0.0 for ms in report.layer_wall_ms.values())
        assert set(report.layer_throughput_ips) == layer_names
        assert report.wall_ms_total > 0.0
        assert report.wall_ms_per_image == pytest.approx(
            report.wall_ms_total / report.batch_size
        )
        # The simulated estimate is computed once for the batch.
        assert report.estimate.latency_ms > 0.0

    def test_batched_is_faster_than_sequential_runs(self, tiny_bnn_network, rng):
        import time

        images = rng.integers(0, 256, size=(8, 16, 16, 3)).astype(np.uint8)
        engine = PhoneBitEngine()
        # Warm up both paths (weight packing, NumPy internals).
        engine.run(tiny_bnn_network, images[:1])
        engine.run_batch(tiny_bnn_network, images)

        t0 = time.perf_counter()
        for i in range(images.shape[0]):
            engine.run(tiny_bnn_network, images[i : i + 1])
        sequential_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        engine.run_batch(tiny_bnn_network, images)
        batched_s = time.perf_counter() - t0
        # One vectorized pass amortizes per-call overhead; generous margin to
        # stay robust on noisy CI machines.
        assert batched_s < sequential_s

    def test_duplicate_layer_names_stay_distinct(self, rng):
        # Layers left unnamed share a default name; the per-layer report
        # must not merge them.
        from repro.core.layers import BinaryConv2d, InputConv2d, MaxPool2d
        from repro.core.network import Network

        net = Network("dups", input_shape=(8, 8, 3), input_dtype="uint8")
        net.add(InputConv2d(3, 8, 3, padding=1, rng=1))
        net.add(MaxPool2d(2))
        net.add(BinaryConv2d(8, 8, 3, padding=1, rng=2))
        net.add(MaxPool2d(2))
        net.add(BinaryConv2d(8, 8, 3, padding=1, output_binary=False, rng=3))
        images = rng.integers(0, 256, size=(2, 8, 8, 3)).astype(np.uint8)
        report = PhoneBitEngine().run_batch(net, images)
        assert len(report.layer_wall_ms) == len(net.layers)

    def test_rejects_bad_arguments(self, tiny_bnn_network, tiny_images):
        engine = PhoneBitEngine()
        with pytest.raises(ValueError):
            engine.run_batch(tiny_bnn_network, tiny_images, chunk_size=0)
        with pytest.raises(ValueError):
            engine.run_batch(
                tiny_bnn_network, np.zeros((0, 16, 16, 3), dtype=np.uint8)
            )
