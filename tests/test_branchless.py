"""Tests for the branch-divergence-free binarization (Eqn. 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import branchless
from repro.core.fusion import fused_binarize


class TestTruthTable:
    def test_has_eight_rows(self):
        assert len(branchless.truth_table()) == 8

    def test_infeasible_rows_marked(self):
        infeasible = [row for row in branchless.truth_table() if not row.feasible]
        assert all(row.a and row.c for row in infeasible)
        assert len(infeasible) == 2

    def test_formulations_equivalent(self):
        assert branchless.formulations_equivalent()

    def test_eqn9_matches_eqn8_on_feasible_rows(self):
        for row in branchless.truth_table():
            if row.feasible:
                assert row.eqn9 == row.eqn8, row


class TestBranchlessOperator:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_fused_reference(self, random_batchnorm, seed):
        rng = np.random.default_rng(seed)
        channels = 11
        bn = random_batchnorm(channels, seed=seed)
        x1 = rng.integers(-40, 40, size=(3, 5, 5, channels)).astype(np.float64)
        threshold = rng.normal(scale=5, size=channels)
        np.testing.assert_array_equal(
            branchless.branchless_binarize(x1, threshold, bn.gamma),
            fused_binarize(x1, threshold, bn.gamma),
        )

    def test_matches_divergent_reference(self, rng):
        channels = 6
        gamma = rng.choice([-1.0, 1.0], size=channels)
        threshold = rng.normal(size=channels)
        x1 = rng.integers(-10, 10, size=(4, channels)).astype(np.float64)
        np.testing.assert_array_equal(
            branchless.branchless_binarize(x1, threshold, gamma),
            branchless.divergent_binarize(x1, threshold, gamma),
        )

    def test_equality_case(self):
        threshold = np.array([2.0, 2.0])
        gamma = np.array([1.0, -1.0])
        x1 = np.array([[2.0, 2.0]])
        np.testing.assert_array_equal(
            branchless.branchless_binarize(x1, threshold, gamma), [[1, 1]]
        )

    def test_output_is_binary_uint8(self, rng):
        out = branchless.branchless_binarize(
            rng.normal(size=(3, 4)), rng.normal(size=4), rng.normal(size=4)
        )
        assert out.dtype == np.uint8
        assert set(np.unique(out)).issubset({0, 1})

    @settings(max_examples=60, deadline=None)
    @given(
        x1=st.integers(-100, 100),
        threshold=st.integers(-100, 100),
        gamma_positive=st.booleans(),
    )
    def test_exhaustive_scalar_property(self, x1, threshold, gamma_positive):
        gamma = np.array([1.0 if gamma_positive else -1.0])
        x = np.array([[float(x1)]])
        t = np.array([float(threshold)])
        expected = fused_binarize(x, t, gamma)
        np.testing.assert_array_equal(
            branchless.branchless_binarize(x, t, gamma), expected
        )
