"""Tests for the command-line interface."""

import io

import pytest

from repro import cli
from repro.core import model_format


class TestCli:
    def test_devices(self, capsys):
        assert cli.main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Snapdragon 820" in out and "Snapdragon 855" in out

    def test_sizes(self, capsys):
        assert cli.main(["sizes"]) == 0
        assert "VGG16" in capsys.readouterr().out

    def test_runtime_single_model(self, capsys):
        assert cli.main(["runtime", "--model", "YOLOv2 Tiny"]) == 0
        out = capsys.readouterr().out
        assert "PhoneBit" in out and "Snapdragon 855" in out

    def test_energy(self, capsys):
        assert cli.main(["energy", "--device", "sd820"]) == 0
        assert "FPS/W" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert cli.main(["figure5", "--device", "sd855"]) == 0
        assert "conv9" in capsys.readouterr().out

    def test_summary(self, tmp_path, capsys, tiny_bnn_network):
        path = tmp_path / "tiny.pbit"
        model_format.save_network(tiny_bnn_network, str(path))
        assert cli.main(["summary", str(path)]) == 0
        assert "conv2" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            cli.main([])
