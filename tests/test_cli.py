"""Tests for the command-line interface."""

import io

import pytest

from repro import cli
from repro.core import model_format


class TestCli:
    def test_devices(self, capsys):
        assert cli.main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Snapdragon 820" in out and "Snapdragon 855" in out

    def test_sizes(self, capsys):
        assert cli.main(["sizes"]) == 0
        assert "VGG16" in capsys.readouterr().out

    def test_runtime_single_model(self, capsys):
        assert cli.main(["runtime", "--model", "YOLOv2 Tiny"]) == 0
        out = capsys.readouterr().out
        assert "PhoneBit" in out and "Snapdragon 855" in out

    def test_energy(self, capsys):
        assert cli.main(["energy", "--device", "sd820"]) == 0
        assert "FPS/W" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert cli.main(["figure5", "--device", "sd855"]) == 0
        assert "conv9" in capsys.readouterr().out

    def test_summary(self, tmp_path, capsys, tiny_bnn_network):
        path = tmp_path / "tiny.pbit"
        model_format.save_network(tiny_bnn_network, str(path))
        assert cli.main(["summary", str(path)]) == 0
        assert "conv2" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestServingCli:
    def test_serve_bench(self, capsys):
        assert cli.main([
            "serve-bench", "--model", "MicroCNN", "--batches", "1,4",
            "--requests", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Serving throughput" in out
        assert "bit-identical" in out
        assert "speedup" in out

    def test_serve_bench_json(self, tmp_path, capsys):
        path = tmp_path / "serve.json"
        assert cli.main([
            "serve-bench", "--batches", "4", "--requests", "8",
            "--json", str(path),
        ]) == 0
        import json

        records = json.loads(path.read_text())["records"]
        assert len(records) == 1
        record = records[0]
        assert record["offered_batch"] == 4
        assert record["bit_identical"] is True
        assert record["requests_per_s"] > 0
        assert f"wrote {path}" in capsys.readouterr().out

    def test_loadgen(self, capsys):
        assert cli.main([
            "loadgen", "--model", "MicroCNN", "--rps", "500",
            "--requests", "12",
        ]) == 0
        out = capsys.readouterr().out
        assert "Load generation" in out
        assert "Serving report — MicroCNN" in out
        assert "latency p99 (ms)" in out

    def test_loadgen_unique_inputs_defeat_the_cache(self, capsys):
        assert cli.main([
            "loadgen", "--rps", "500", "--requests", "8", "--unique-inputs",
        ]) == 0
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if "cache hit rate" in l)
        assert line.rstrip().endswith("0.0%")


class TestScenarioCli:
    def test_scenario_run_prints_per_class_summary(self, capsys):
        assert cli.main([
            "loadgen", "--scenario",
            "web,slo=interactive,rate=50;jobs,slo=batch,rate=30",
            "--duration-s", "0.8", "--workers", "2", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Per-class summary" in out
        assert "interactive" in out and "batch" in out
        assert "schedule digest" in out
        assert "bit identical     True" in out

    def test_scenario_accepts_bundled_names(self):
        args = cli.build_parser().parse_args(
            ["loadgen", "--scenario", "flash_crowd"])
        assert args.scenario.name == "flash_crowd"
        assert {t.slo for t in args.scenario.tenants} >= {"interactive",
                                                          "batch"}

    def test_malformed_scenario_spec_is_a_usage_error(self, capsys):
        for bad in ("no_such_scenario", "t,curve=warp", "t,slo=gold",
                    "slo=interactive"):
            with pytest.raises(SystemExit) as excinfo:
                cli.build_parser().parse_args(["loadgen", "--scenario", bad])
            assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown arrival curve" in err
        assert "unknown SLO class" in err

    def test_malformed_chaos_spec_is_a_usage_error(self, capsys):
        for bad in ("x:crash", "7:warp", "7:crash*0", "7:"):
            with pytest.raises(SystemExit) as excinfo:
                cli.build_parser().parse_args(["loadgen", "--chaos", bad])
            assert excinfo.value.code == 2
        assert "unknown fault class" in capsys.readouterr().err

    def test_slo_flag_routes_through_shedding_admission(self, capsys):
        assert cli.main([
            "loadgen", "--slo", "batch", "--rps", "400", "--requests", "10",
            "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "non-blocking admission" in out
        assert "slo class" in out and "batch" in out

    def test_unknown_slo_class_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            cli.build_parser().parse_args(["loadgen", "--slo", "gold"])
        assert excinfo.value.code == 2
