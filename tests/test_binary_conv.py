"""Tests for binary convolution (Eqn. 1) and the bit-plane input conv (Eqn. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import binary_conv


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 8, 8, 3))
        patches = binary_conv.im2col_nhwc(x, kernel_size=3, stride=1, padding=1)
        assert patches.shape == (2, 8, 8, 27)

    def test_stride_and_padding(self, rng):
        x = rng.normal(size=(1, 7, 7, 2))
        patches = binary_conv.im2col_nhwc(x, kernel_size=3, stride=2, padding=0)
        assert patches.shape == (1, 3, 3, 18)

    def test_pad_value_used(self):
        x = np.ones((1, 2, 2, 1))
        patches = binary_conv.im2col_nhwc(x, kernel_size=3, stride=1, padding=1,
                                          pad_value=-1.0)
        # Corner patch contains 5 padded (-1) positions and 4 real ones.
        corner = patches[0, 0, 0]
        assert (corner == -1).sum() == 5
        assert (corner == 1).sum() == 4

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            binary_conv.im2col_nhwc(np.zeros((3, 3)), kernel_size=2)


class TestFloatConv:
    def test_identity_kernel(self, rng):
        x = rng.normal(size=(1, 5, 5, 1))
        w = np.zeros((1, 1, 1, 1))
        w[0, 0, 0, 0] = 1.0
        out = binary_conv.conv2d_float_nhwc(x, w)
        np.testing.assert_allclose(out, x)

    def test_bias_applied(self, rng):
        x = rng.normal(size=(1, 4, 4, 2))
        w = rng.normal(size=(3, 3, 2, 5))
        bias = rng.normal(size=5)
        with_bias = binary_conv.conv2d_float_nhwc(x, w, padding=1, bias=bias)
        without = binary_conv.conv2d_float_nhwc(x, w, padding=1)
        np.testing.assert_allclose(with_bias - without, np.broadcast_to(bias, with_bias.shape))

    def test_rejects_rectangular_kernels(self, rng):
        with pytest.raises(ValueError):
            binary_conv.conv2d_float_nhwc(
                rng.normal(size=(1, 4, 4, 1)), rng.normal(size=(3, 2, 1, 1))
            )


class TestBinaryConv:
    @pytest.mark.parametrize("channels,cout", [(3, 4), (16, 8), (37, 13), (64, 70)])
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_float_reference(self, rng, channels, cout, stride, padding):
        x_bits = rng.integers(0, 2, size=(2, 6, 6, channels), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, channels, cout), dtype=np.uint8)
        x_packed = binary_conv.pack_activations(x_bits)
        w_packed = binary_conv.pack_weights(w_bits)
        out = binary_conv.binary_conv2d_packed(
            x_packed, w_packed, channels, 3, stride=stride, padding=padding
        )
        ref = binary_conv.binary_conv2d_reference(
            x_bits, w_bits, 3, stride=stride, padding=padding
        )
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("word_size", [8, 16, 32, 64])
    def test_word_size_invariance(self, rng, word_size):
        x_bits = rng.integers(0, 2, size=(1, 5, 5, 20), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, 20, 6), dtype=np.uint8)
        x_packed = binary_conv.pack_activations(x_bits, word_size=word_size)
        w_packed = binary_conv.pack_weights(w_bits, word_size=word_size)
        out = binary_conv.binary_conv2d_packed(x_packed, w_packed, 20, 3, padding=1)
        ref = binary_conv.binary_conv2d_reference(x_bits, w_bits, 3, padding=1)
        np.testing.assert_array_equal(out, ref)

    def test_output_range_bounded_by_kernel_volume(self, rng):
        channels, cout = 10, 4
        x_bits = rng.integers(0, 2, size=(1, 6, 6, channels), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, channels, cout), dtype=np.uint8)
        out = binary_conv.binary_conv2d_packed(
            binary_conv.pack_activations(x_bits),
            binary_conv.pack_weights(w_bits),
            channels, 3,
        )
        volume = 3 * 3 * channels
        assert out.max() <= volume and out.min() >= -volume
        # Parity: dot product of ±1 vectors has the same parity as the length.
        assert np.all((out - volume) % 2 == 0)

    def test_mismatched_packing_rejected(self, rng):
        x_bits = rng.integers(0, 2, size=(1, 5, 5, 16), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, 80, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            binary_conv.binary_conv2d_packed(
                binary_conv.pack_activations(x_bits),
                binary_conv.pack_weights(w_bits),
                16, 3,
            )

    def test_pack_weights_rejects_bad_rank(self, rng):
        with pytest.raises(ValueError):
            binary_conv.pack_weights(rng.integers(0, 2, size=(3, 3, 4)))

    def test_pack_activations_rejects_bad_rank(self, rng):
        with pytest.raises(ValueError):
            binary_conv.pack_activations(rng.integers(0, 2, size=(3, 4)))


class TestInputConv:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    @pytest.mark.parametrize("word_size", [8, 32, 64])
    def test_matches_integer_reference(self, rng, stride, padding, word_size):
        image = rng.integers(0, 256, size=(2, 7, 7, 3)).astype(np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, 3, 5), dtype=np.uint8)
        w_packed = binary_conv.pack_weights(w_bits, word_size=word_size)
        out = binary_conv.input_conv2d_bitplanes(
            image, w_packed, 3, 3, stride=stride, padding=padding,
            word_size=word_size,
        )
        ref = binary_conv.input_conv2d_reference(
            image, w_bits, 3, stride=stride, padding=padding
        )
        np.testing.assert_array_equal(out, ref)

    def test_reduced_bit_width_inputs(self, rng):
        image = rng.integers(0, 16, size=(1, 5, 5, 2)).astype(np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, 2, 4), dtype=np.uint8)
        out = binary_conv.input_conv2d_bitplanes(
            image, binary_conv.pack_weights(w_bits), 2, 3, padding=1, input_bits=4
        )
        ref = binary_conv.input_conv2d_reference(image, w_bits, 3, padding=1)
        np.testing.assert_array_equal(out, ref)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        channels=st.integers(1, 40),
        cout=st.integers(1, 10),
        size=st.integers(3, 6),
    )
    def test_binary_conv_equals_reference(self, seed, channels, cout, size):
        rng = np.random.default_rng(seed)
        x_bits = rng.integers(0, 2, size=(1, size, size, channels), dtype=np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, channels, cout), dtype=np.uint8)
        out = binary_conv.binary_conv2d_packed(
            binary_conv.pack_activations(x_bits),
            binary_conv.pack_weights(w_bits),
            channels, 3, padding=1,
        )
        ref = binary_conv.binary_conv2d_reference(x_bits, w_bits, 3, padding=1)
        np.testing.assert_array_equal(out, ref)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), channels=st.integers(1, 4))
    def test_bitplane_conv_equals_integer_conv(self, seed, channels):
        rng = np.random.default_rng(seed)
        image = rng.integers(0, 256, size=(1, 5, 5, channels)).astype(np.uint8)
        w_bits = rng.integers(0, 2, size=(3, 3, channels, 3), dtype=np.uint8)
        out = binary_conv.input_conv2d_bitplanes(
            image, binary_conv.pack_weights(w_bits), channels, 3, padding=1
        )
        ref = binary_conv.input_conv2d_reference(image, w_bits, 3, padding=1)
        np.testing.assert_array_equal(out, ref)
